//! One 64×64 tile of a [`BlockMatrix`](crate::block::BlockMatrix), in
//! the cheapest of three formats.
//!
//! A tile covers 64 rows × 64 columns, so one row is exactly one `u64`
//! and all three formats convert through a common 64-word dense scratch:
//!
//! * [`Tile::Dense`] — 64 bit-words, 512 B regardless of population;
//!   cheapest once a tile densifies past ~191 set cells (0.125 B/nnz at
//!   saturation — the packed-boolean win the paper's 4× memory claim
//!   rides on).
//! * [`Tile::Csr`] — `u16` row pointers + `u16` column indices,
//!   `130 + 2·nnz` B with O(1) row access; the mid-density format.
//! * [`Tile::Coo`] — sorted packed `(row << 6 | col)` `u16` entries,
//!   `2·nnz` B with no per-row structure; cheapest for near-empty tiles
//!   where even 65 row pointers would dominate.
//!
//! Format choice is by *measured byte cost at the tile's nnz*, with an
//! nnz floor separating COO from CSR (below [`COO_MAX_NNZ`] the rowless
//! scan is both smaller and faster than maintaining pointers). A tile
//! that already has a format only *re*-chooses when its nnz moves past
//! a crossover by the hysteresis margin ([`HYSTERESIS_NUM`] /
//! [`HYSTERESIS_DEN`]), so fixpoint rounds that nudge a tile back and
//! forth across a threshold don't thrash conversions.

/// Tile edge length: 64 so a tile row is one machine word.
pub const TILE: usize = 64;

/// Largest nnz stored as COO; above this CSR's row pointers pay for
/// themselves in row-access cost (bytes alone would keep COO forever —
/// `2·nnz < 130 + 2·nnz` — so this bound is the kernel-cost crossover).
pub const COO_MAX_NNZ: usize = 64;

/// Smallest nnz stored dense: `130 + 2·nnz ≥ 512` ⇔ `nnz ≥ 191`.
pub const DENSE_MIN_NNZ: usize = 191;

/// Hysteresis margin numerator: an existing tile switches format only
/// when its nnz clears a crossover by ≥ 1/8 (12.5%).
pub const HYSTERESIS_NUM: usize = 1;
/// Hysteresis margin denominator.
pub const HYSTERESIS_DEN: usize = 8;

/// Which of the three formats a tile currently uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileFormat {
    /// 64 bit-words (512 B).
    Dense,
    /// `u16` row pointers + columns (`130 + 2·nnz` B).
    Csr,
    /// Sorted packed `u16` coordinates (`2·nnz` B).
    Coo,
}

impl TileFormat {
    /// The cheapest format for a fresh tile of `nnz` set cells.
    pub fn choose(nnz: usize) -> TileFormat {
        if nnz >= DENSE_MIN_NNZ {
            TileFormat::Dense
        } else if nnz > COO_MAX_NNZ {
            TileFormat::Csr
        } else {
            TileFormat::Coo
        }
    }

    /// Re-choose for a tile that already holds `prev`: keep `prev`
    /// unless `nnz` is past the crossover into another format by the
    /// hysteresis margin. Fixpoint accumulation only grows tiles, so
    /// without the margin a tile sitting exactly on a threshold would
    /// convert on one round and (under element-wise shrinkage) convert
    /// straight back the next.
    pub fn rechoose(prev: TileFormat, nnz: usize) -> TileFormat {
        let margin = |t: usize| t + t * HYSTERESIS_NUM / HYSTERESIS_DEN;
        let ideal = TileFormat::choose(nnz);
        if ideal == prev {
            return prev;
        }
        match (prev, ideal) {
            // Densify paths: demand the margin above the upward threshold.
            (TileFormat::Coo, TileFormat::Csr) => {
                if nnz >= margin(COO_MAX_NNZ + 1) {
                    TileFormat::Csr
                } else {
                    TileFormat::Coo
                }
            }
            (TileFormat::Coo, TileFormat::Dense) | (TileFormat::Csr, TileFormat::Dense) => {
                if nnz >= margin(DENSE_MIN_NNZ) {
                    TileFormat::Dense
                } else {
                    prev
                }
            }
            // Sparsify paths: demand the margin below the downward
            // threshold (nnz must drop to 1/(1+m) of it).
            (TileFormat::Dense, _) => {
                if nnz * (HYSTERESIS_DEN + HYSTERESIS_NUM) <= DENSE_MIN_NNZ * HYSTERESIS_DEN {
                    ideal
                } else {
                    TileFormat::Dense
                }
            }
            (TileFormat::Csr, TileFormat::Coo) => {
                if nnz * (HYSTERESIS_DEN + HYSTERESIS_NUM) <= (COO_MAX_NNZ + 1) * HYSTERESIS_DEN {
                    TileFormat::Coo
                } else {
                    TileFormat::Csr
                }
            }
            _ => ideal,
        }
    }
}

/// One 64×64 tile. Empty tiles are never stored (the block row simply
/// has no entry at that tile column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tile {
    /// 64 bit-words, row `r` = word `r`.
    Dense(Box<[u64; TILE]>),
    /// `row_ptr[r] .. row_ptr[r+1]` indexes `cols`; columns strictly
    /// increasing within a row.
    Csr {
        /// 65 `u16` offsets into `cols`.
        row_ptr: Box<[u16; TILE + 1]>,
        /// Local column indices (`< 64`).
        cols: Vec<u16>,
    },
    /// Sorted packed `(row << 6) | col` entries.
    Coo(Vec<u16>),
}

impl Tile {
    /// Build a tile of the given format from 64 dense row words.
    fn build(words: &[u64; TILE], format: TileFormat, nnz: usize) -> Tile {
        match format {
            TileFormat::Dense => Tile::Dense(Box::new(*words)),
            TileFormat::Csr => {
                let mut row_ptr = Box::new([0u16; TILE + 1]);
                let mut cols = Vec::with_capacity(nnz);
                for (r, &w) in words.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        cols.push(bits.trailing_zeros() as u16);
                        bits &= bits - 1;
                    }
                    row_ptr[r + 1] = cols.len() as u16;
                }
                Tile::Csr { row_ptr, cols }
            }
            TileFormat::Coo => {
                let mut entries = Vec::with_capacity(nnz);
                for (r, &w) in words.iter().enumerate() {
                    let mut bits = w;
                    while bits != 0 {
                        entries.push(((r as u16) << 6) | bits.trailing_zeros() as u16);
                        bits &= bits - 1;
                    }
                }
                Tile::Coo(entries)
            }
        }
    }

    /// A fresh tile from 64 dense row words in the cheapest format, or
    /// `None` if the words are all zero. Also returns the nnz.
    pub fn from_words(words: &[u64; TILE]) -> Option<(Tile, usize)> {
        let nnz: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        if nnz == 0 {
            return None;
        }
        Some((Tile::build(words, TileFormat::choose(nnz), nnz), nnz))
    }

    /// A tile from dense row words for a cell that previously held a
    /// `prev`-format tile: the format re-choice applies hysteresis, and
    /// the returned flag reports whether a switch actually happened
    /// (fed to the `spbla_block_format_switches_total` counter).
    pub fn from_words_rechoosing(
        words: &[u64; TILE],
        prev: TileFormat,
    ) -> Option<(Tile, usize, bool)> {
        let nnz: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        if nnz == 0 {
            return None;
        }
        let format = TileFormat::rechoose(prev, nnz);
        Some((Tile::build(words, format, nnz), nnz, format != prev))
    }

    /// The tile's current format.
    pub fn format(&self) -> TileFormat {
        match self {
            Tile::Dense(_) => TileFormat::Dense,
            Tile::Csr { .. } => TileFormat::Csr,
            Tile::Coo(_) => TileFormat::Coo,
        }
    }

    /// Row `r` (local, `< 64`) as a bit-word.
    pub fn row_bits(&self, r: usize) -> u64 {
        match self {
            Tile::Dense(words) => words[r],
            Tile::Csr { row_ptr, cols } => {
                let mut w = 0u64;
                for &c in &cols[row_ptr[r] as usize..row_ptr[r + 1] as usize] {
                    w |= 1u64 << c;
                }
                w
            }
            Tile::Coo(entries) => {
                let lo = entries.partition_point(|&e| e < (r as u16) << 6);
                let hi = entries.partition_point(|&e| e < ((r as u16) + 1) << 6);
                let mut w = 0u64;
                for &e in &entries[lo..hi] {
                    w |= 1u64 << (e & 63);
                }
                w
            }
        }
    }

    /// OR the tile into 64 dense row words.
    pub fn write_into(&self, dst: &mut [u64; TILE]) {
        match self {
            Tile::Dense(words) => {
                for (d, &w) in dst.iter_mut().zip(words.iter()) {
                    *d |= w;
                }
            }
            Tile::Csr { row_ptr, cols } => {
                for r in 0..TILE {
                    for &c in &cols[row_ptr[r] as usize..row_ptr[r + 1] as usize] {
                        dst[r] |= 1u64 << c;
                    }
                }
            }
            Tile::Coo(entries) => {
                for &e in entries {
                    dst[(e >> 6) as usize] |= 1u64 << (e & 63);
                }
            }
        }
    }

    /// Bit `r` set iff row `r` has at least one cell.
    pub fn rows_mask(&self) -> u64 {
        match self {
            Tile::Dense(words) => {
                let mut m = 0u64;
                for (r, &w) in words.iter().enumerate() {
                    if w != 0 {
                        m |= 1u64 << r;
                    }
                }
                m
            }
            Tile::Csr { row_ptr, .. } => {
                let mut m = 0u64;
                for r in 0..TILE {
                    if row_ptr[r] != row_ptr[r + 1] {
                        m |= 1u64 << r;
                    }
                }
                m
            }
            Tile::Coo(entries) => {
                let mut m = 0u64;
                for &e in entries {
                    m |= 1u64 << (e >> 6);
                }
                m
            }
        }
    }

    /// Bit `c` set iff column `c` has at least one cell.
    pub fn cols_mask(&self) -> u64 {
        match self {
            Tile::Dense(words) => words.iter().fold(0u64, |m, &w| m | w),
            Tile::Csr { cols, .. } => cols.iter().fold(0u64, |m, &c| m | (1u64 << c)),
            Tile::Coo(entries) => entries.iter().fold(0u64, |m, &e| m | (1u64 << (e & 63))),
        }
    }

    /// Number of set cells.
    pub fn nnz(&self) -> usize {
        match self {
            Tile::Dense(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
            Tile::Csr { cols, .. } => cols.len(),
            Tile::Coo(entries) => entries.len(),
        }
    }

    /// Payload bytes under the tile's format.
    pub fn bytes(&self) -> usize {
        match self {
            Tile::Dense(_) => TILE * 8,
            Tile::Csr { cols, .. } => (TILE + 1) * 2 + cols.len() * 2,
            Tile::Coo(entries) => entries.len() * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words_with(nnz: usize) -> [u64; TILE] {
        // Fill row-major: nnz cells spread deterministically.
        let mut w = [0u64; TILE];
        let mut placed = 0usize;
        let mut s = 0x9E37u64;
        while placed < nnz {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let r = (s >> 32) as usize % TILE;
            let c = s as usize % TILE;
            if w[r] & (1 << c) == 0 {
                w[r] |= 1 << c;
                placed += 1;
            }
        }
        w
    }

    #[test]
    fn choose_matches_byte_costs() {
        assert_eq!(TileFormat::choose(1), TileFormat::Coo);
        assert_eq!(TileFormat::choose(COO_MAX_NNZ), TileFormat::Coo);
        assert_eq!(TileFormat::choose(COO_MAX_NNZ + 1), TileFormat::Csr);
        assert_eq!(TileFormat::choose(DENSE_MIN_NNZ - 1), TileFormat::Csr);
        assert_eq!(TileFormat::choose(DENSE_MIN_NNZ), TileFormat::Dense);
        // At the dense threshold the byte costs genuinely cross.
        let csr_bytes = (TILE + 1) * 2 + DENSE_MIN_NNZ * 2;
        assert!(csr_bytes >= TILE * 8);
    }

    #[test]
    fn rechoose_applies_hysteresis() {
        // Just past a crossover: the old format sticks.
        assert_eq!(
            TileFormat::rechoose(TileFormat::Coo, COO_MAX_NNZ + 2),
            TileFormat::Coo
        );
        assert_eq!(
            TileFormat::rechoose(TileFormat::Csr, DENSE_MIN_NNZ + 5),
            TileFormat::Csr
        );
        // Past the margin: it switches.
        assert_eq!(
            TileFormat::rechoose(TileFormat::Coo, COO_MAX_NNZ + COO_MAX_NNZ / 4),
            TileFormat::Csr
        );
        assert_eq!(
            TileFormat::rechoose(TileFormat::Csr, DENSE_MIN_NNZ + DENSE_MIN_NNZ / 4),
            TileFormat::Dense
        );
        // Shrinking out of dense needs the downward margin too.
        assert_eq!(
            TileFormat::rechoose(TileFormat::Dense, DENSE_MIN_NNZ - 2),
            TileFormat::Dense
        );
        assert_eq!(TileFormat::rechoose(TileFormat::Dense, 10), TileFormat::Coo);
        // Same format: no-op at any count.
        assert_eq!(TileFormat::rechoose(TileFormat::Csr, 100), TileFormat::Csr);
    }

    #[test]
    fn all_formats_roundtrip_through_words() {
        for nnz in [1usize, 40, 64, 65, 120, 190, 191, 400, TILE * TILE] {
            let words = words_with(nnz.min(TILE * TILE));
            let (tile, n) = Tile::from_words(&words).expect("non-empty");
            assert_eq!(n, tile.nnz());
            let mut back = [0u64; TILE];
            tile.write_into(&mut back);
            assert_eq!(back, words, "format {:?} nnz {nnz}", tile.format());
            for (r, &w) in words.iter().enumerate() {
                assert_eq!(tile.row_bits(r), w);
            }
        }
        assert!(Tile::from_words(&[0u64; TILE]).is_none());
    }

    #[test]
    fn bytes_track_format() {
        let words = words_with(10);
        let (t, _) = Tile::from_words(&words).unwrap();
        assert_eq!(t.format(), TileFormat::Coo);
        assert_eq!(t.bytes(), 20);
        let dense = Tile::build(&words, TileFormat::Dense, 10);
        assert_eq!(dense.bytes(), 512);
        let csr = Tile::build(&words, TileFormat::Csr, 10);
        assert_eq!(csr.bytes(), 130 + 20);
    }
}
