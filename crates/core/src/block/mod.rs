//! Adaptive tiled block storage.
//!
//! [`BlockMatrix`] partitions a matrix into 64-row block-rows of 64×64
//! [`Tile`]s and stores each tile in the cheapest of
//! {dense bit-word, CSR, COO} for its population (see [`tile`] for the
//! crossovers). Empty tiles are simply absent, so hypersparse regions
//! cost nothing; saturated regions pay 512 B per 4096 cells — the
//! packed-boolean density the paper's memory claim comes from — while
//! the in-between rides compact `u16` sparse tiles.
//!
//! Every kernel runs strip-wise: a block-row's result is accumulated
//! into a dense 64-row scratch of bit-words (one block-row of a
//! `BitMatrix`), then re-tiled. The scratch makes mixed-format operands
//! trivial — any tile ORs into it regardless of format — and guarantees
//! results bit-identical to the flat representations, because Boolean
//! union in a bitmap has one possible answer. Accumulating kernels
//! (the fused fixpoint step, `ewise_add`) re-choose each surviving
//! tile's format with hysteresis ([`TileFormat::rechoose`]), so a
//! closure round that densifies a tile past a crossover converts it —
//! counted in `spbla_block_format_switches_total` — without thrashing
//! at the boundary.
//!
//! [`k2tree`] holds the companion read-mostly archival format the
//! engine catalog demotes pinned-history graph versions to.

pub mod k2tree;
pub mod tile;

use spbla_obs::metrics_global;

use crate::error::{Result, SpblaError};
use crate::format::csr::CsrBool;
use crate::index::{Index, Pair};

pub use k2tree::K2Tree;
pub use tile::{Tile, TileFormat, TILE};

/// One block-row: tiles sorted by tile-column index; empty tiles absent.
type BlockRow = Vec<(u32, Tile)>;

/// A Boolean matrix stored as block-rows of format-adaptive 64×64 tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMatrix {
    nrows: Index,
    ncols: Index,
    /// `⌈ncols / 64⌉` — the strip width in tiles.
    tile_cols: usize,
    rows: Vec<BlockRow>,
    nnz: usize,
}

/// Count of per-tile format conversions triggered by accumulate paths.
const SWITCH_COUNTER: &str = "spbla_block_format_switches_total";

fn strip_words(strip: &[u64], j: usize) -> &[u64; TILE] {
    strip[j * TILE..(j + 1) * TILE]
        .try_into()
        .expect("strip tile is TILE words")
}

fn strip_words_mut(strip: &mut [u64], j: usize) -> &mut [u64; TILE] {
    (&mut strip[j * TILE..(j + 1) * TILE])
        .try_into()
        .expect("strip tile is TILE words")
}

/// Collect a bit-word accumulator into sorted indices.
fn words_to_indices(words: &[u64]) -> Vec<Index> {
    let mut out = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let mut bits = w;
        while bits != 0 {
            out.push(wi as Index * 64 + bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
    out
}

impl BlockMatrix {
    /// An empty `nrows × ncols` matrix.
    pub fn zeros(nrows: Index, ncols: Index) -> BlockMatrix {
        BlockMatrix {
            nrows,
            ncols,
            tile_cols: (ncols as usize).div_ceil(TILE),
            rows: vec![Vec::new(); (nrows as usize).div_ceil(TILE)],
            nnz: 0,
        }
    }

    /// Tile a host CSR matrix; every tile gets its exact cheapest format.
    pub fn from_csr(m: &CsrBool) -> BlockMatrix {
        let mut out = BlockMatrix::zeros(m.nrows(), m.ncols());
        let mut strip = vec![0u64; out.tile_cols * TILE];
        for (bi, row) in out.rows.iter_mut().enumerate() {
            strip.fill(0);
            let lo = (bi * TILE) as Index;
            let hi = m.nrows().min(lo + TILE as Index);
            let mut any = false;
            for i in lo..hi {
                for &j in m.row(i) {
                    strip[(j as usize / TILE) * TILE + (i - lo) as usize] |= 1u64 << (j % 64);
                    any = true;
                }
            }
            if !any {
                continue;
            }
            let (tiles, nnz, _) = tiles_from_strip(&strip, out.tile_cols, None);
            *row = tiles;
            out.nnz += nnz;
        }
        out
    }

    /// Build from coordinate pairs (bounds-checked).
    pub fn from_pairs(nrows: Index, ncols: Index, pairs: &[Pair]) -> Result<BlockMatrix> {
        Ok(BlockMatrix::from_csr(&CsrBool::from_pairs(
            nrows, ncols, pairs,
        )?))
    }

    /// Materialise as host CSR.
    pub fn to_csr(&self) -> CsrBool {
        let mut row_ptr = Vec::with_capacity(self.nrows as usize + 1);
        row_ptr.push(0 as Index);
        let mut cols = Vec::with_capacity(self.nnz);
        for i in 0..self.nrows {
            let (bi, r) = (i as usize / TILE, i as usize % TILE);
            for &(j, ref t) in &self.rows[bi] {
                let mut bits = t.row_bits(r);
                while bits != 0 {
                    cols.push(j * TILE as Index + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            row_ptr.push(cols.len() as Index);
        }
        CsrBool::from_raw(self.nrows, self.ncols, row_ptr, cols)
    }

    /// All `true` coordinates, row-major.
    pub fn to_pairs(&self) -> Vec<Pair> {
        self.to_csr().to_pairs()
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    /// Number of `true` cells.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Test one cell.
    pub fn get(&self, i: Index, j: Index) -> bool {
        if i >= self.nrows || j >= self.ncols {
            return false;
        }
        let row = &self.rows[i as usize / TILE];
        match row.binary_search_by_key(&(j / TILE as Index), |e| e.0) {
            Ok(p) => row[p].1.row_bits(i as usize % TILE) & (1u64 << (j % 64)) != 0,
            Err(_) => false,
        }
    }

    /// Actual resident bytes: each tile's payload under its current
    /// format plus per-tile and per-block-row bookkeeping — what the
    /// catalog budgets against.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<BlockMatrix>();
        for row in &self.rows {
            bytes += std::mem::size_of::<BlockRow>();
            for (_, t) in row {
                // Tile-column key + format discriminant, then payload.
                bytes += 8 + t.bytes();
            }
        }
        bytes
    }

    /// `(dense, csr, coo)` tile counts — the ablation's format census.
    pub fn format_census(&self) -> (usize, usize, usize) {
        let (mut d, mut c, mut o) = (0, 0, 0);
        for row in &self.rows {
            for (_, t) in row {
                match t.format() {
                    TileFormat::Dense => d += 1,
                    TileFormat::Csr => c += 1,
                    TileFormat::Coo => o += 1,
                }
            }
        }
        (d, c, o)
    }

    fn check_mul(&self, b: &BlockMatrix, op: &'static str) -> Result<()> {
        if self.ncols != b.nrows {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        Ok(())
    }

    fn check_same_shape(&self, b: &BlockMatrix, op: &'static str) -> Result<()> {
        if self.shape() != b.shape() {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: b.shape(),
            });
        }
        Ok(())
    }

    /// OR block-row `bi` of `self` into `strip` (sized for `self`).
    fn expand_row(&self, bi: usize, strip: &mut [u64]) {
        for &(j, ref t) in &self.rows[bi] {
            t.write_into(strip_words_mut(strip, j as usize));
        }
    }

    /// Accumulate block-row `bi` of `self · b` into `strip` (sized for
    /// `b`'s tile columns): for every A-tile bit `(r, k)`, OR B's row
    /// `k` into scratch row `r` — plain Boolean union, so the result is
    /// bit-identical to any flat kernel's.
    fn product_row(&self, b: &BlockMatrix, bi: usize, strip: &mut [u64]) {
        for &(k, ref a_tile) in &self.rows[bi] {
            let mut aw = [0u64; TILE];
            a_tile.write_into(&mut aw);
            for &(j, ref b_tile) in &b.rows[k as usize] {
                let mut bw = [0u64; TILE];
                b_tile.write_into(&mut bw);
                let base = j as usize * TILE;
                for (r, &arow) in aw.iter().enumerate() {
                    let mut bits = arow;
                    if bits == 0 {
                        continue;
                    }
                    let mut acc = strip[base + r];
                    while bits != 0 {
                        acc |= bw[bits.trailing_zeros() as usize];
                        bits &= bits - 1;
                    }
                    strip[base + r] = acc;
                }
            }
        }
    }

    /// `C = A · B`.
    pub fn mxm(&self, b: &BlockMatrix) -> Result<BlockMatrix> {
        self.check_mul(b, "mxm")?;
        let mut out = BlockMatrix::zeros(self.nrows, b.ncols);
        let mut strip = vec![0u64; out.tile_cols * TILE];
        for bi in 0..self.rows.len() {
            if self.rows[bi].is_empty() {
                continue;
            }
            strip.fill(0);
            self.product_row(b, bi, &mut strip);
            let (tiles, nnz, _) = tiles_from_strip(&strip, out.tile_cols, None);
            out.rows[bi] = tiles;
            out.nnz += nnz;
        }
        Ok(out)
    }

    fn mxm_filtered(
        &self,
        b: &BlockMatrix,
        mask: &BlockMatrix,
        keep_present: bool,
    ) -> Result<BlockMatrix> {
        self.check_mul(b, "mxm_masked")?;
        if (self.nrows, b.ncols) != mask.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_masked",
                lhs: (self.nrows, b.ncols),
                rhs: mask.shape(),
            });
        }
        let mut out = BlockMatrix::zeros(self.nrows, b.ncols);
        let mut strip = vec![0u64; out.tile_cols * TILE];
        let mut mstrip = vec![0u64; out.tile_cols * TILE];
        for bi in 0..self.rows.len() {
            if self.rows[bi].is_empty() {
                continue;
            }
            if keep_present && mask.rows[bi].is_empty() {
                continue;
            }
            strip.fill(0);
            self.product_row(b, bi, &mut strip);
            mstrip.fill(0);
            mask.expand_row(bi, &mut mstrip);
            for (s, &m) in strip.iter_mut().zip(mstrip.iter()) {
                *s &= if keep_present { m } else { !m };
            }
            let (tiles, nnz, _) = tiles_from_strip(&strip, out.tile_cols, None);
            out.rows[bi] = tiles;
            out.nnz += nnz;
        }
        Ok(out)
    }

    /// `C = (A · B) ∧ M`.
    pub fn mxm_masked(&self, b: &BlockMatrix, mask: &BlockMatrix) -> Result<BlockMatrix> {
        self.mxm_filtered(b, mask, true)
    }

    /// `C = (A · B) ∧ ¬M`.
    pub fn mxm_compmask(&self, b: &BlockMatrix, mask: &BlockMatrix) -> Result<BlockMatrix> {
        self.mxm_filtered(b, mask, false)
    }

    /// Fused semi-naïve step over the accumulator `self = C`:
    /// `fresh = (a · b) ∧ ¬C`, `acc = C ∪ fresh`, plus the fresh count.
    /// This is the densify path: surviving accumulator tiles re-choose
    /// their format with hysteresis, fresh-delta tiles pick exact.
    pub fn mxm_accum_compmask(
        &self,
        a: &BlockMatrix,
        b: &BlockMatrix,
        want_fresh: bool,
    ) -> Result<(BlockMatrix, usize, Option<BlockMatrix>)> {
        a.check_mul(b, "mxm_accum_compmask")?;
        if (a.nrows, b.ncols) != self.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_accum_compmask",
                lhs: (a.nrows, b.ncols),
                rhs: self.shape(),
            });
        }
        let mut acc = BlockMatrix::zeros(self.nrows, self.ncols);
        let mut fresh = want_fresh.then(|| BlockMatrix::zeros(self.nrows, self.ncols));
        let mut fresh_nnz = 0usize;
        let mut switches = 0usize;
        let mut pstrip = vec![0u64; self.tile_cols * TILE];
        let mut cstrip = vec![0u64; self.tile_cols * TILE];
        for bi in 0..self.rows.len() {
            pstrip.fill(0);
            a.product_row(b, bi, &mut pstrip);
            cstrip.fill(0);
            self.expand_row(bi, &mut cstrip);
            let mut row_fresh = 0usize;
            for (p, &c) in pstrip.iter_mut().zip(cstrip.iter()) {
                *p &= !c; // pstrip becomes the fresh strip
                row_fresh += p.count_ones() as usize;
            }
            if let Some(f) = fresh.as_mut() {
                if row_fresh > 0 {
                    let (tiles, nnz, _) = tiles_from_strip(&pstrip, self.tile_cols, None);
                    f.rows[bi] = tiles;
                    f.nnz += nnz;
                }
            }
            fresh_nnz += row_fresh;
            if row_fresh == 0 {
                // Nothing new: the accumulator row carries over as-is,
                // formats untouched (hysteresis degenerate case).
                acc.rows[bi] = self.rows[bi].clone();
                acc.nnz += self.rows[bi].iter().map(|(_, t)| t.nnz()).sum::<usize>();
                continue;
            }
            for (p, &c) in pstrip.iter_mut().zip(cstrip.iter()) {
                *p |= c; // now the acc strip
            }
            let (tiles, nnz, sw) = tiles_from_strip(&pstrip, self.tile_cols, Some(&self.rows[bi]));
            acc.rows[bi] = tiles;
            acc.nnz += nnz;
            switches += sw;
        }
        if switches > 0 {
            metrics_global()
                .counter(SWITCH_COUNTER)
                .inc(switches as u64);
        }
        Ok((acc, fresh_nnz, fresh))
    }

    /// `C = A + B` (set union). Tiles that existed in `self` re-choose
    /// with hysteresis; tiles new to the union pick exact.
    pub fn ewise_add(&self, b: &BlockMatrix) -> Result<BlockMatrix> {
        self.check_same_shape(b, "ewise_add")?;
        let mut out = BlockMatrix::zeros(self.nrows, self.ncols);
        let mut strip = vec![0u64; self.tile_cols * TILE];
        let mut switches = 0usize;
        for bi in 0..self.rows.len() {
            if self.rows[bi].is_empty() && b.rows[bi].is_empty() {
                continue;
            }
            strip.fill(0);
            self.expand_row(bi, &mut strip);
            b.expand_row(bi, &mut strip);
            let (tiles, nnz, sw) = tiles_from_strip(&strip, self.tile_cols, Some(&self.rows[bi]));
            out.rows[bi] = tiles;
            out.nnz += nnz;
            switches += sw;
        }
        if switches > 0 {
            metrics_global()
                .counter(SWITCH_COUNTER)
                .inc(switches as u64);
        }
        Ok(out)
    }

    /// `C = A ∧ B` (set intersection): only tiles present on both sides
    /// can survive, so this walks the sorted tile lists pairwise.
    pub fn ewise_mult(&self, b: &BlockMatrix) -> Result<BlockMatrix> {
        self.check_same_shape(b, "ewise_mult")?;
        let mut out = BlockMatrix::zeros(self.nrows, self.ncols);
        for bi in 0..self.rows.len() {
            let (ra, rb) = (&self.rows[bi], &b.rows[bi]);
            let (mut x, mut y) = (0usize, 0usize);
            while x < ra.len() && y < rb.len() {
                match ra[x].0.cmp(&rb[y].0) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        let mut w = [0u64; TILE];
                        ra[x].1.write_into(&mut w);
                        let mut wb = [0u64; TILE];
                        rb[y].1.write_into(&mut wb);
                        for (a, &bw) in w.iter_mut().zip(wb.iter()) {
                            *a &= bw;
                        }
                        if let Some((t, n)) = Tile::from_words(&w) {
                            out.rows[bi].push((ra[x].0, t));
                            out.nnz += n;
                        }
                        x += 1;
                        y += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Frontier push `out = ⋃_{i ∈ set} row(i)`; `set` sorted ascending.
    pub fn vxm(&self, set: &[Index]) -> Vec<Index> {
        let mut acc = vec![0u64; self.tile_cols];
        for &i in set {
            let bi = i as usize / TILE;
            if bi >= self.rows.len() {
                continue;
            }
            let r = i as usize % TILE;
            for &(j, ref t) in &self.rows[bi] {
                acc[j as usize] |= t.row_bits(r);
            }
        }
        words_to_indices(&acc)
    }

    /// Frontier pull: same result as [`BlockMatrix::vxm`] from a dense
    /// bit-word frontier.
    pub fn vxm_pull(&self, frontier_words: &[u64]) -> Vec<Index> {
        let mut acc = vec![0u64; self.tile_cols];
        for (wi, &w) in frontier_words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let i = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let bi = i / TILE;
                if bi >= self.rows.len() {
                    continue;
                }
                for &(j, ref t) in &self.rows[bi] {
                    acc[j as usize] |= t.row_bits(i % TILE);
                }
            }
        }
        words_to_indices(&acc)
    }

    /// `out[i] = ⋁_j M[i,j] ∧ x[j]` — pull-direction matrix × vector.
    pub fn mxv_indices(&self, xs: &[Index]) -> Vec<Index> {
        let mut mask = vec![0u64; self.tile_cols];
        for &j in xs {
            mask[j as usize / TILE] |= 1u64 << (j % 64);
        }
        let mut out = Vec::new();
        for (bi, row) in self.rows.iter().enumerate() {
            let mut presence = 0u64;
            for &(j, ref t) in row {
                let m = mask[j as usize];
                if m == 0 {
                    continue;
                }
                for r in 0..TILE {
                    if presence & (1u64 << r) == 0 && t.row_bits(r) & m != 0 {
                        presence |= 1u64 << r;
                    }
                }
            }
            let mut bits = presence;
            while bits != 0 {
                out.push((bi * TILE) as Index + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        out
    }

    /// Indices of non-empty rows.
    pub fn reduce_to_column(&self) -> Vec<Index> {
        let mut out = Vec::new();
        for (bi, row) in self.rows.iter().enumerate() {
            let mut presence = 0u64;
            for (_, t) in row {
                presence |= t.rows_mask();
            }
            let mut bits = presence;
            while bits != 0 {
                out.push((bi * TILE) as Index + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        out
    }

    /// Indices of non-empty columns.
    pub fn reduce_to_row(&self) -> Vec<Index> {
        let mut acc = vec![0u64; self.tile_cols];
        for row in &self.rows {
            for &(j, ref t) in row {
                acc[j as usize] |= t.cols_mask();
            }
        }
        words_to_indices(&acc)
    }

    /// Transpose `Mᵀ` (host roundtrip — a structural op outside the
    /// fixpoint hot path).
    pub fn transpose(&self) -> BlockMatrix {
        BlockMatrix::from_csr(&self.to_csr().transpose())
    }

    /// Kronecker product `K = A ⊗ B` (host roundtrip).
    pub fn kron(&self, b: &BlockMatrix) -> Result<BlockMatrix> {
        Ok(BlockMatrix::from_csr(&self.to_csr().kron(&b.to_csr())?))
    }

    /// Extract `M[i0 .. i0+nrows, j0 .. j0+ncols]` (host roundtrip).
    pub fn submatrix(
        &self,
        i0: Index,
        j0: Index,
        nrows: Index,
        ncols: Index,
    ) -> Result<BlockMatrix> {
        Ok(BlockMatrix::from_csr(
            &self.to_csr().submatrix(i0, j0, nrows, ncols)?,
        ))
    }
}

/// Re-tile a dense strip. `prev`, when given, is the block-row this
/// strip replaces: tiles that existed there re-choose format through
/// the hysteresis rule, and the returned third value counts how many
/// actually converted. Tiles with no predecessor pick their exact
/// cheapest format.
fn tiles_from_strip(
    strip: &[u64],
    tile_cols: usize,
    prev: Option<&BlockRow>,
) -> (BlockRow, usize, usize) {
    let mut tiles = Vec::new();
    let mut nnz = 0usize;
    let mut switches = 0usize;
    let mut prev_at = 0usize;
    for j in 0..tile_cols {
        let words = strip_words(strip, j);
        let prev_format = prev.and_then(|p| {
            while prev_at < p.len() && p[prev_at].0 < j as u32 {
                prev_at += 1;
            }
            (prev_at < p.len() && p[prev_at].0 == j as u32).then(|| p[prev_at].1.format())
        });
        match prev_format {
            Some(f) => {
                if let Some((t, n, switched)) = Tile::from_words_rechoosing(words, f) {
                    tiles.push((j as u32, t));
                    nnz += n;
                    switches += usize::from(switched);
                }
            }
            None => {
                if let Some((t, n)) = Tile::from_words(words) {
                    tiles.push((j as u32, t));
                    nnz += n;
                }
            }
        }
    }
    (tiles, nnz, switches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_pairs(n: u32, nnz: usize, seed: u64) -> Vec<Pair> {
        let mut s = seed | 1;
        let mut out = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.push(((s >> 32) as u32 % n, s as u32 % n));
        }
        out
    }

    fn csr(n: u32, nnz: usize, seed: u64) -> CsrBool {
        CsrBool::from_pairs(n, n, &pseudo_pairs(n, nnz, seed)).unwrap()
    }

    #[test]
    fn roundtrip_and_get() {
        for (n, nnz) in [(5u32, 8usize), (64, 200), (130, 1000), (200, 12_000)] {
            let m = csr(n, nnz, n as u64);
            let b = BlockMatrix::from_csr(&m);
            assert_eq!(b.nnz(), m.nnz());
            assert_eq!(b.to_csr(), m);
            for (i, j) in m.iter().take(50) {
                assert!(b.get(i, j));
            }
            assert!(!b.get(n, 0) && !b.get(0, n));
        }
    }

    #[test]
    fn mixed_formats_appear_and_account_bytes() {
        // Dense top-left corner + sparse tail: all three formats.
        let n = 256u32;
        let mut pairs = Vec::new();
        for i in 0..64u32 {
            for j in 0..40u32 {
                pairs.push((i, j));
            }
        }
        pairs.extend(pseudo_pairs(n, 300, 9));
        let m = CsrBool::from_pairs(n, n, &pairs).unwrap();
        let b = BlockMatrix::from_csr(&m);
        let (d, c, o) = b.format_census();
        assert!(d >= 1, "dense corner tile expected, census {:?}", (d, c, o));
        assert!(o >= 1, "sparse COO tiles expected, census {:?}", (d, c, o));
        assert_eq!(b.to_csr(), m);
        // Dense-corner tiles cost 512 B where CSR would pay 4 B/nnz.
        assert!(b.memory_bytes() < m.memory_bytes());
    }

    #[test]
    fn kernels_match_csr_reference() {
        let (a, b, m) = (csr(150, 900, 1), csr(150, 900, 2), csr(150, 400, 3));
        let (ba, bb, bm) = (
            BlockMatrix::from_csr(&a),
            BlockMatrix::from_csr(&b),
            BlockMatrix::from_csr(&m),
        );
        assert_eq!(ba.mxm(&bb).unwrap().to_csr(), a.mxm(&b).unwrap());
        assert_eq!(
            ba.mxm_masked(&bb, &bm).unwrap().to_csr(),
            a.mxm_masked(&b, &m).unwrap()
        );
        assert_eq!(
            ba.mxm_compmask(&bb, &bm).unwrap().to_csr(),
            a.mxm_compmask(&b, &m).unwrap()
        );
        assert_eq!(
            ba.ewise_add(&bb).unwrap().to_csr(),
            a.ewise_add(&b).unwrap()
        );
        assert_eq!(
            ba.ewise_mult(&bb).unwrap().to_csr(),
            a.ewise_mult(&b).unwrap()
        );
        assert_eq!(ba.transpose().to_csr(), a.transpose());
        assert_eq!(
            ba.submatrix(3, 7, 100, 90).unwrap().to_csr(),
            a.submatrix(3, 7, 100, 90).unwrap()
        );
        let small = csr(12, 30, 4);
        let bsmall = BlockMatrix::from_csr(&small);
        assert_eq!(ba.kron(&bsmall).unwrap().to_csr(), a.kron(&small).unwrap());
        assert_eq!(ba.reduce_to_column(), a.reduce_to_column());
        assert_eq!(ba.reduce_to_row(), a.reduce_to_row());
        let set: Vec<Index> = vec![0, 3, 64, 100];
        assert_eq!(ba.vxm(&set), a.vxm(&set));
        let mut fw = vec![0u64; 150usize.div_ceil(64)];
        for &i in &set {
            fw[i as usize / 64] |= 1u64 << (i % 64);
        }
        assert_eq!(ba.vxm_pull(&fw), a.vxm(&set));
    }

    #[test]
    fn fused_accum_matches_and_counts_fresh() {
        let (c, a, b) = (csr(120, 400, 5), csr(120, 600, 6), csr(120, 600, 7));
        let (bc, ba, bb) = (
            BlockMatrix::from_csr(&c),
            BlockMatrix::from_csr(&a),
            BlockMatrix::from_csr(&b),
        );
        let (acc_ref, fresh_ref, fresh_m_ref) = c.mxm_accum_compmask(&a, &b, true).unwrap();
        let (acc, fresh_nnz, fresh) = bc.mxm_accum_compmask(&ba, &bb, true).unwrap();
        assert_eq!(acc.to_csr(), acc_ref);
        assert_eq!(fresh_nnz, fresh_ref);
        assert_eq!(fresh.unwrap().to_csr(), fresh_m_ref.unwrap());
        assert_eq!(acc.nnz(), c.nnz() + fresh_nnz);
        // want_fresh = false skips the delta.
        let (_, n2, none) = bc.mxm_accum_compmask(&ba, &bb, false).unwrap();
        assert_eq!(n2, fresh_ref);
        assert!(none.is_none());
    }

    #[test]
    fn densifying_fixpoint_switches_formats() {
        // A cycle's closure saturates: every tile ends dense. Run the
        // semi-naïve fixpoint exactly as transitive_closure does.
        let n = 128u32;
        let ring: Vec<Pair> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = CsrBool::from_pairs(n, n, &ring).unwrap();
        let mut acc = BlockMatrix::from_csr(&g);
        let (d0, _, o0) = acc.format_census();
        assert_eq!(d0, 0);
        assert!(o0 > 0, "ring starts as sparse COO tiles");
        let mut delta = acc.clone();
        loop {
            let (next, fresh_nnz, fresh) = acc.mxm_accum_compmask(&acc, &delta, true).unwrap();
            if fresh_nnz == 0 {
                break;
            }
            acc = next;
            delta = fresh.unwrap();
        }
        assert_eq!(acc.nnz(), (n * n) as usize);
        let (d, c, o) = acc.format_census();
        assert_eq!((c, o), (0, 0), "saturated closure must be all-dense");
        assert_eq!(d, 4);
        // And it matches the flat reference closure bit-for-bit.
        let mut racc = g.clone();
        let mut rdelta = g;
        loop {
            let (next, fresh_nnz, fresh) = racc.mxm_accum_compmask(&racc, &rdelta, true).unwrap();
            if fresh_nnz == 0 {
                break;
            }
            racc = next;
            rdelta = fresh.unwrap();
        }
        assert_eq!(acc.to_csr(), racc);
    }

    #[test]
    fn mxv_matches_reference() {
        let a = csr(100, 500, 11);
        let ba = BlockMatrix::from_csr(&a);
        let xs: Vec<Index> = vec![1, 5, 64, 99];
        let expect: Vec<Index> = (0..100)
            .filter(|&i| a.row(i).iter().any(|j| xs.contains(j)))
            .collect();
        assert_eq!(ba.mxv_indices(&xs), expect);
    }

    #[test]
    fn dimension_mismatches_are_typed() {
        let a = BlockMatrix::from_csr(&csr(10, 20, 1));
        let b = BlockMatrix::zeros(11, 11);
        assert!(matches!(
            a.mxm(&b),
            Err(SpblaError::DimensionMismatch { op: "mxm", .. })
        ));
        assert!(a.ewise_add(&b).is_err());
        assert!(a.ewise_mult(&b).is_err());
        assert!(a.mxm_accum_compmask(&b, &b, false).is_err());
    }

    #[test]
    fn empty_and_rectangular() {
        let z = BlockMatrix::zeros(0, 0);
        assert_eq!(z.nnz(), 0);
        let r = BlockMatrix::from_pairs(3, 200, &[(0, 0), (2, 199)]).unwrap();
        assert_eq!(r.to_pairs(), vec![(0, 0), (2, 199)]);
        let t = r.transpose();
        assert_eq!(t.shape(), (200, 3));
        assert_eq!(t.to_pairs(), vec![(0, 0), (199, 2)]);
        let tall = BlockMatrix::from_pairs(200, 3, &[(199, 1)]).unwrap();
        let prod = r.mxm(&tall).unwrap();
        assert_eq!(prod.to_pairs(), vec![(2, 1)]);
    }
}
