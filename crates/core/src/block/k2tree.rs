//! Read-mostly k²-tree archival format (k = 2).
//!
//! A k²-tree stores a Boolean matrix as a quadtree over a
//! power-of-two-padded square domain, one presence bit per child: level
//! ℓ holds four bits for every non-empty node of level ℓ−1, so empty
//! quadrants cost nothing below the level that rules them out and the
//! leaves cost one *bit* per surviving 1×1 cell. On clustered adjacency
//! structure (the common case for RDF/LUBM graphs after closure) this
//! lands well under CSR's 4 B per edge — the representation *Evaluating
//! Regular Path Queries on Compressed Adjacency Matrices* uses to keep
//! whole graph histories addressable.
//!
//! The tree is append-only and has no random-access update path, which
//! is exactly the archival contract: the engine catalog demotes
//! evicted-but-pinned-*history* graph versions to this format and
//! rehydrates them to a live representation on their next access.

use crate::error::Result;
use crate::format::csr::CsrBool;
use crate::index::{Index, Pair};

/// A Boolean matrix archived as a k²-tree (k = 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct K2Tree {
    nrows: Index,
    ncols: Index,
    /// log₂ of the padded square side; 0 when the matrix is empty.
    height: u32,
    /// One packed bitmap per level, root first; four bits per node.
    levels: Vec<Vec<u64>>,
    /// Number of bits used in each level's bitmap.
    level_bits: Vec<usize>,
    nnz: usize,
}

/// Interleave the low 32 bits of `row` and `col` into a Morton code
/// (row bits in the odd positions, so a code's top bit pair is
/// `(row_msb, col_msb)` — the root's child index).
fn morton(row: u32, col: u32) -> u64 {
    fn spread(mut v: u64) -> u64 {
        v &= 0xFFFF_FFFF;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    (spread(row as u64) << 1) | spread(col as u64)
}

fn push_bit(words: &mut Vec<u64>, bits: &mut usize, set: bool) {
    if (*bits).is_multiple_of(64) {
        words.push(0);
    }
    if set {
        *words.last_mut().expect("just pushed") |= 1u64 << (*bits % 64);
    }
    *bits += 1;
}

fn get_bit(words: &[u64], p: usize) -> bool {
    words[p / 64] & (1u64 << (p % 64)) != 0
}

impl K2Tree {
    /// Archive a host CSR matrix.
    pub fn from_csr(m: &CsrBool) -> K2Tree {
        let mut codes: Vec<u64> = m.iter().map(|(i, j)| morton(i, j)).collect();
        codes.sort_unstable();
        let nnz = codes.len();
        if nnz == 0 {
            return K2Tree {
                nrows: m.nrows(),
                ncols: m.ncols(),
                height: 0,
                levels: Vec::new(),
                level_bits: Vec::new(),
                nnz: 0,
            };
        }
        let side = m.nrows().max(m.ncols()).max(1).next_power_of_two();
        let height = side.trailing_zeros().max(1);
        let mut levels = Vec::with_capacity(height as usize);
        let mut level_bits = Vec::with_capacity(height as usize);
        for level in 0..height {
            // Child-pair position within the code for this level; the
            // node identity is the code prefix above it. Codes are
            // sorted, so equal prefixes are contiguous and nodes are
            // emitted in bitmap order.
            let shift = 2 * (height - 1 - level);
            let mut words = Vec::new();
            let mut bits = 0usize;
            let mut i = 0usize;
            while i < codes.len() {
                let prefix = codes[i] >> (shift + 2);
                let mut children = 0u8;
                while i < codes.len() && codes[i] >> (shift + 2) == prefix {
                    children |= 1u8 << ((codes[i] >> shift) & 3);
                    i += 1;
                }
                for c in 0..4u8 {
                    push_bit(&mut words, &mut bits, children & (1 << c) != 0);
                }
            }
            levels.push(words);
            level_bits.push(bits);
        }
        K2Tree {
            nrows: m.nrows(),
            ncols: m.ncols(),
            height,
            levels,
            level_bits,
            nnz,
        }
    }

    /// Rehydrate to a host CSR matrix.
    pub fn to_csr(&self) -> CsrBool {
        let mut pairs: Vec<Pair> = Vec::with_capacity(self.nnz);
        if self.nnz > 0 {
            // Per-level cumulative popcounts so child lookup is O(1):
            // the children of the node behind set bit `p` of level ℓ
            // start at bit `4 · rank₁(ℓ, p)` of level ℓ+1.
            let ranks: Vec<Vec<usize>> = self
                .levels
                .iter()
                .map(|words| {
                    let mut cum = Vec::with_capacity(words.len() + 1);
                    let mut total = 0usize;
                    cum.push(0);
                    for &w in words {
                        total += w.count_ones() as usize;
                        cum.push(total);
                    }
                    cum
                })
                .collect();
            let rank = |level: usize, p: usize| -> usize {
                let words = &self.levels[level];
                ranks[level][p / 64]
                    + (words[p / 64] & ((1u64 << (p % 64)) - 1)).count_ones() as usize
            };
            let mut stack: Vec<(usize, usize, u32, u32)> = vec![(0, 0, 0, 0)];
            while let Some((level, node, row_pfx, col_pfx)) = stack.pop() {
                for child in 0..4usize {
                    let p = node * 4 + child;
                    if p >= self.level_bits[level] || !get_bit(&self.levels[level], p) {
                        continue;
                    }
                    let r = row_pfx * 2 + (child as u32 >> 1);
                    let c = col_pfx * 2 + (child as u32 & 1);
                    if level + 1 == self.height as usize {
                        pairs.push((r, c));
                    } else {
                        stack.push((level + 1, rank(level, p), r, c));
                    }
                }
            }
            pairs.sort_unstable();
        }
        CsrBool::from_pairs(self.nrows, self.ncols, &pairs).expect("archived coordinates in bounds")
    }

    /// Archive an arbitrary pair list (bounds-checked).
    pub fn from_pairs(nrows: Index, ncols: Index, pairs: &[Pair]) -> Result<K2Tree> {
        Ok(K2Tree::from_csr(&CsrBool::from_pairs(nrows, ncols, pairs)?))
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of archived `true` cells.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Serialize to a little-endian byte stream — the on-disk form the
    /// durability layer's graph checkpoints use. Layout: `nrows`,
    /// `ncols`, `height` (u32 each), `nnz` (u64), level count (u32),
    /// then per level its bit count (u64) and packed words.
    pub fn to_bytes(&self) -> Vec<u8> {
        let total_words: usize = self.levels.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(24 + self.levels.len() * 12 + total_words * 8);
        out.extend_from_slice(&self.nrows.to_le_bytes());
        out.extend_from_slice(&self.ncols.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&(self.nnz as u64).to_le_bytes());
        out.extend_from_slice(&(self.levels.len() as u32).to_le_bytes());
        for (words, &bits) in self.levels.iter().zip(&self.level_bits) {
            out.extend_from_slice(&(bits as u64).to_le_bytes());
            for w in words {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Deserialize a [`K2Tree::to_bytes`] stream, validating structural
    /// invariants (level count matches height, word counts match bit
    /// counts, leaf popcount matches `nnz`) so a corrupt checkpoint is
    /// rejected instead of decoding into an inconsistent tree.
    pub fn from_bytes(bytes: &[u8]) -> Result<K2Tree> {
        fn bad(reason: &str) -> crate::error::SpblaError {
            crate::error::SpblaError::InvalidDimension(format!("k2tree decode: {reason}"))
        }
        struct Cur<'a> {
            bytes: &'a [u8],
            at: usize,
        }
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8]> {
                let end = self
                    .at
                    .checked_add(n)
                    .filter(|&e| e <= self.bytes.len())
                    .ok_or_else(|| bad("truncated stream"))?;
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            fn u32(&mut self) -> Result<u32> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 B")))
            }
            fn u64(&mut self) -> Result<u64> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 B")))
            }
        }
        let mut cur = Cur { bytes, at: 0 };
        let nrows = cur.u32()?;
        let ncols = cur.u32()?;
        let height = cur.u32()?;
        let nnz = cur.u64()? as usize;
        let n_levels = cur.u32()? as usize;
        if n_levels != if nnz == 0 { 0 } else { height as usize } {
            return Err(bad("level count does not match height"));
        }
        let mut levels = Vec::with_capacity(n_levels);
        let mut level_bits = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let bits = cur.u64()? as usize;
            if bits == 0 {
                return Err(bad("empty level in a non-empty tree"));
            }
            let n_words = bits.div_ceil(64);
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                words.push(cur.u64()?);
            }
            if let Some(last) = words.last() {
                if !bits.is_multiple_of(64) && *last >> (bits % 64) != 0 {
                    return Err(bad("set bits beyond the level's bit count"));
                }
            }
            levels.push(words);
            level_bits.push(bits);
        }
        if cur.at != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        if nnz > 0 {
            // The height is a function of the shape; a mismatch means a
            // corrupt header that would decode out-of-bounds pairs.
            let side = nrows.max(ncols).max(1).next_power_of_two();
            if height != side.trailing_zeros().max(1) {
                return Err(bad("height does not match the matrix shape"));
            }
            // Tree-shape invariants: the root holds one node, and every
            // set bit of level ℓ owns exactly one 4-bit node of level
            // ℓ+1 — so rank-based child lookup can never walk past the
            // end of a bitmap.
            if level_bits[0] != 4 {
                return Err(bad("root level must hold exactly one node"));
            }
            for l in 0..n_levels - 1 {
                let pop: usize = levels[l].iter().map(|w| w.count_ones() as usize).sum();
                if level_bits[l + 1] != 4 * pop {
                    return Err(bad("level size does not match parent popcount"));
                }
            }
        }
        let leaf_pop: usize = levels
            .last()
            .map(|ws| ws.iter().map(|w| w.count_ones() as usize).sum())
            .unwrap_or(0);
        if leaf_pop != nnz {
            return Err(bad("leaf popcount does not match nnz"));
        }
        Ok(K2Tree {
            nrows,
            ncols,
            height: if nnz == 0 { 0 } else { height },
            levels,
            level_bits,
            nnz,
        })
    }

    /// Archived footprint: the level bitmaps plus headers.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<K2Tree>()
            + self
                .levels
                .iter()
                .map(|w| w.len() * 8 + std::mem::size_of::<Vec<u64>>())
                .sum::<usize>()
            + self.level_bits.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_pairs(n: u32, nnz: usize, seed: u64) -> Vec<Pair> {
        let mut s = seed | 1;
        let mut out = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.push(((s >> 32) as u32 % n, s as u32 % n));
        }
        out
    }

    #[test]
    fn roundtrips_exactly() {
        for (n, nnz, seed) in [
            (1u32, 1usize, 7u64),
            (17, 40, 1),
            (100, 500, 2),
            (257, 33, 3),
        ] {
            let m = CsrBool::from_pairs(n, n, &pseudo_pairs(n, nnz, seed)).unwrap();
            let t = K2Tree::from_csr(&m);
            assert_eq!(t.nnz(), m.nnz());
            assert_eq!(t.to_csr(), m, "n={n} nnz={nnz}");
        }
    }

    #[test]
    fn rectangular_and_empty() {
        let m = CsrBool::from_pairs(3, 70, &[(0, 0), (2, 69), (1, 64)]).unwrap();
        let t = K2Tree::from_csr(&m);
        assert_eq!(t.to_csr(), m);
        let empty = CsrBool::zeros(10, 10);
        let te = K2Tree::from_csr(&empty);
        assert_eq!(te.nnz(), 0);
        assert_eq!(te.to_csr(), empty);
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        for (n, nnz, seed) in [(1u32, 1usize, 7u64), (17, 40, 1), (257, 33, 3)] {
            let m = CsrBool::from_pairs(n, n, &pseudo_pairs(n, nnz, seed)).unwrap();
            let t = K2Tree::from_csr(&m);
            let back = K2Tree::from_bytes(&t.to_bytes()).unwrap();
            assert_eq!(back, t, "n={n} nnz={nnz}");
        }
        // Empty and rectangular shapes survive the trip too.
        for m in [
            CsrBool::zeros(10, 10),
            CsrBool::from_pairs(3, 70, &[(0, 0), (2, 69)]).unwrap(),
        ] {
            let t = K2Tree::from_csr(&m);
            assert_eq!(K2Tree::from_bytes(&t.to_bytes()).unwrap(), t);
        }
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_decoded() {
        let m = CsrBool::from_pairs(50, 50, &pseudo_pairs(50, 120, 5)).unwrap();
        let good = K2Tree::from_csr(&m).to_bytes();
        // Truncation at every prefix length fails typed, never panics.
        for cut in 0..good.len() {
            assert!(K2Tree::from_bytes(&good[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected.
        let mut padded = good.clone();
        padded.push(0);
        assert!(K2Tree::from_bytes(&padded).is_err());
        // A flipped bitmap bit breaks the popcount chain.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        assert!(K2Tree::from_bytes(&flipped).is_err());
        // A corrupted height header is caught against the shape.
        let mut bad_height = good;
        bad_height[8] ^= 0x01;
        assert!(K2Tree::from_bytes(&bad_height).is_err());
    }

    #[test]
    fn clustered_graph_beats_csr_bytes() {
        // A hierarchy closure: each vertex points at all its ancestors —
        // the archival target shape. Clustered 1s compress well.
        let n = 1024u32;
        let mut pairs = Vec::new();
        for v in 1..n {
            let mut a = v;
            while a > 0 {
                a /= 2;
                pairs.push((v, a));
            }
        }
        let m = CsrBool::from_pairs(n, n, &pairs).unwrap();
        let t = K2Tree::from_csr(&m);
        assert_eq!(t.to_csr(), m);
        assert!(
            t.memory_bytes() < m.memory_bytes() / 2,
            "k2tree {} vs csr {}",
            t.memory_bytes(),
            m.memory_bytes()
        );
    }
}
