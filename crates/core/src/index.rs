//! Index types. The paper stores coordinates as `uint32_t`; we mirror that
//! so format memory-footprint formulas ((m + nnz)·4 bytes for CSR,
//! 2·nnz·4 bytes for COO) match.

/// Element index type (`IndexType` in the paper).
pub type Index = u32;

/// A `(row, col)` coordinate of a `true` cell.
pub type Pair = (Index, Index);

/// Pack a coordinate into a radix-sortable 64-bit key (row-major order).
#[inline]
pub fn pack(row: Index, col: Index) -> u64 {
    ((row as u64) << 32) | col as u64
}

/// Inverse of [`pack`].
#[inline]
pub fn unpack(key: u64) -> Pair {
    ((key >> 32) as Index, key as Index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip_and_order() {
        assert_eq!(unpack(pack(3, 7)), (3, 7));
        assert_eq!(unpack(pack(u32::MAX, u32::MAX)), (u32::MAX, u32::MAX));
        // Row-major: key order equals (row, col) lexicographic order.
        assert!(pack(1, u32::MAX) < pack(2, 0));
        assert!(pack(5, 3) < pack(5, 4));
    }
}
