//! Library error type.

use std::fmt;

/// Errors returned by SPbLA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpblaError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Operation name, e.g. `"mxm"`.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (u32, u32),
        /// Shape of the right operand.
        rhs: (u32, u32),
    },
    /// A coordinate lies outside the matrix bounds.
    IndexOutOfBounds {
        /// Offending row index.
        row: u32,
        /// Offending column index.
        col: u32,
        /// Matrix shape.
        shape: (u32, u32),
    },
    /// Operands belong to different backends/instances.
    BackendMismatch,
    /// A requested dimension is zero or would overflow the index type
    /// (e.g. a Kronecker product larger than `u32::MAX` on a side).
    InvalidDimension(String),
    /// A byte-footprint estimate overflowed `u64` — the requested shape
    /// cannot be represented densely on any device, so sizing math must
    /// fail typed instead of silently wrapping into a "fits" verdict.
    FootprintOverflow {
        /// Rows of the shape being sized.
        nrows: u64,
        /// Columns of the shape being sized.
        ncols: u64,
    },
    /// The simulated device failed (out of memory, bad launch).
    Device(spbla_gpu_sim::DeviceError),
}

impl fmt::Display for SpblaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpblaError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch between {}x{} and {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SpblaError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            SpblaError::BackendMismatch => {
                write!(f, "operands belong to different backend instances")
            }
            SpblaError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
            SpblaError::FootprintOverflow { nrows, ncols } => write!(
                f,
                "dense footprint of {nrows}x{ncols} overflows a 64-bit byte count"
            ),
            SpblaError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for SpblaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpblaError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<spbla_gpu_sim::DeviceError> for SpblaError {
    fn from(e: spbla_gpu_sim::DeviceError) -> Self {
        SpblaError::Device(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SpblaError>;
