//! Compressed-sparse-row Boolean matrices and their sequential operations.
//!
//! This is both the cuBool storage format and, through the methods here,
//! the sequential CPU reference backend against which the simulated-GPU
//! kernels are verified.

use crate::error::{Result, SpblaError};
use crate::index::{Index, Pair};

/// A Boolean sparse matrix in CSR format.
///
/// Invariants (checked by [`CsrBool::validate`], asserted in debug builds
/// by constructors):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[nrows] == cols.len()`;
/// * column indices within each row are strictly increasing (no
///   duplicates — a Boolean matrix has no multiplicity) and `< ncols`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrBool {
    nrows: Index,
    ncols: Index,
    row_ptr: Vec<Index>,
    cols: Vec<Index>,
}

impl CsrBool {
    /// An empty `nrows × ncols` matrix.
    pub fn zeros(nrows: Index, ncols: Index) -> Self {
        CsrBool {
            nrows,
            ncols,
            row_ptr: vec![0; nrows as usize + 1],
            cols: Vec::new(),
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: Index) -> Self {
        CsrBool {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            cols: (0..n).collect(),
        }
    }

    /// Build from coordinate pairs, deduplicating. Returns an error if any
    /// coordinate is out of bounds.
    pub fn from_pairs(nrows: Index, ncols: Index, pairs: &[Pair]) -> Result<Self> {
        for &(i, j) in pairs {
            if i >= nrows || j >= ncols {
                return Err(SpblaError::IndexOutOfBounds {
                    row: i,
                    col: j,
                    shape: (nrows, ncols),
                });
            }
        }
        let mut sorted: Vec<Pair> = pairs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut row_ptr = vec![0 as Index; nrows as usize + 1];
        for &(i, _) in &sorted {
            row_ptr[i as usize + 1] += 1;
        }
        for r in 0..nrows as usize {
            row_ptr[r + 1] += row_ptr[r];
        }
        let cols = sorted.into_iter().map(|(_, j)| j).collect();
        Ok(CsrBool {
            nrows,
            ncols,
            row_ptr,
            cols,
        })
    }

    /// Assemble from raw parts. Debug-asserts the invariants; use
    /// [`CsrBool::validate`] for a checked build.
    pub fn from_raw(nrows: Index, ncols: Index, row_ptr: Vec<Index>, cols: Vec<Index>) -> Self {
        let m = CsrBool {
            nrows,
            ncols,
            row_ptr,
            cols,
        };
        debug_assert!(m.validate().is_ok(), "invalid CSR: {:?}", m.validate());
        m
    }

    /// Verify the structural invariants.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.row_ptr.len() != self.nrows as usize + 1 {
            return Err(format!(
                "row_ptr length {} != nrows + 1 = {}",
                self.row_ptr.len(),
                self.nrows + 1
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().unwrap() as usize != self.cols.len() {
            return Err("row_ptr[nrows] != nnz".into());
        }
        for r in 0..self.nrows as usize {
            if self.row_ptr[r] > self.row_ptr[r + 1] {
                return Err(format!("row_ptr decreasing at row {r}"));
            }
            let row = &self.cols[self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r} columns not strictly increasing"));
                }
            }
            if let Some(&last) = row.last() {
                if last >= self.ncols {
                    return Err(format!("row {r} column {last} >= ncols {}", self.ncols));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    /// Number of `true` cells.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Whether the matrix has no `true` cells.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// The row-pointer array (`rowspt` in the paper).
    pub fn row_ptr(&self) -> &[Index] {
        &self.row_ptr
    }

    /// The column-index array.
    pub fn cols(&self) -> &[Index] {
        &self.cols
    }

    /// Column indices of row `i`.
    pub fn row(&self, i: Index) -> &[Index] {
        &self.cols[self.row_ptr[i as usize] as usize..self.row_ptr[i as usize + 1] as usize]
    }

    /// Number of entries in row `i`.
    pub fn row_nnz(&self, i: Index) -> usize {
        (self.row_ptr[i as usize + 1] - self.row_ptr[i as usize]) as usize
    }

    /// Test a single cell.
    pub fn get(&self, i: Index, j: Index) -> bool {
        i < self.nrows && self.row(i).binary_search(&j).is_ok()
    }

    /// All `true` coordinates in row-major order.
    pub fn to_pairs(&self) -> Vec<Pair> {
        let mut out = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for &j in self.row(i) {
                out.push((i, j));
            }
        }
        out
    }

    /// Iterate over `true` coordinates in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Pair> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).iter().map(move |&j| (i, j)))
    }

    /// Storage footprint in bytes: `(m + 1 + nnz) · sizeof(Index)` — the
    /// paper's CSR memory formula.
    pub fn memory_bytes(&self) -> usize {
        (self.row_ptr.len() + self.cols.len()) * std::mem::size_of::<Index>()
    }

    fn check_same_shape(&self, other: &Self, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Sequential reference operations (the CPU backend).
    // ------------------------------------------------------------------

    /// Boolean matrix product `C = A · B` (Gustavson's algorithm with a
    /// dense marker array; no values, so "accumulation" is set union).
    pub fn mxm(&self, other: &Self) -> Result<Self> {
        if self.ncols != other.nrows {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut marker: Vec<bool> = vec![false; other.ncols as usize];
        let mut row_ptr = Vec::with_capacity(self.nrows as usize + 1);
        row_ptr.push(0 as Index);
        let mut cols: Vec<Index> = Vec::new();
        let mut scratch: Vec<Index> = Vec::new();
        for i in 0..self.nrows {
            scratch.clear();
            for &k in self.row(i) {
                for &j in other.row(k) {
                    if !marker[j as usize] {
                        marker[j as usize] = true;
                        scratch.push(j);
                    }
                }
            }
            scratch.sort_unstable();
            for &j in &scratch {
                marker[j as usize] = false;
            }
            cols.extend_from_slice(&scratch);
            row_ptr.push(cols.len() as Index);
        }
        Ok(CsrBool {
            nrows: self.nrows,
            ncols: other.ncols,
            row_ptr,
            cols,
        })
    }

    /// Masked product `C = (A · B) ∧ M`: candidates outside the mask row
    /// are rejected before touching the accumulator.
    pub fn mxm_masked(&self, other: &Self, mask: &Self) -> Result<Self> {
        self.mxm_filtered(other, mask, true)
    }

    /// Complemented-mask product `C = (A · B) ∧ ¬M`: only entries *not*
    /// already present in `M` — the semi-naïve fixpoint primitive.
    pub fn mxm_compmask(&self, other: &Self, mask: &Self) -> Result<Self> {
        self.mxm_filtered(other, mask, false)
    }

    /// Gustavson product keeping only candidates whose presence in the
    /// mask row equals `keep_present`.
    fn mxm_filtered(&self, other: &Self, mask: &Self, keep_present: bool) -> Result<Self> {
        if self.ncols != other.nrows {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_masked",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if (self.nrows, other.ncols) != mask.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_masked",
                lhs: (self.nrows, other.ncols),
                rhs: mask.shape(),
            });
        }
        let mut marker: Vec<bool> = vec![false; other.ncols as usize];
        let mut row_ptr = Vec::with_capacity(self.nrows as usize + 1);
        row_ptr.push(0 as Index);
        let mut cols: Vec<Index> = Vec::new();
        let mut scratch: Vec<Index> = Vec::new();
        for i in 0..self.nrows {
            let mrow = mask.row(i);
            if keep_present && mrow.is_empty() {
                row_ptr.push(cols.len() as Index);
                continue;
            }
            scratch.clear();
            for &k in self.row(i) {
                for &j in other.row(k) {
                    if mrow.binary_search(&j).is_ok() != keep_present {
                        continue;
                    }
                    if !marker[j as usize] {
                        marker[j as usize] = true;
                        scratch.push(j);
                    }
                }
            }
            scratch.sort_unstable();
            for &j in &scratch {
                marker[j as usize] = false;
            }
            cols.extend_from_slice(&scratch);
            row_ptr.push(cols.len() as Index);
        }
        Ok(CsrBool {
            nrows: self.nrows,
            ncols: other.ncols,
            row_ptr,
            cols,
        })
    }

    /// Fused semi-naïve step over the accumulator `self = C`: compute
    /// `fresh = (a · b) ∧ ¬C`, merge `C ∪ fresh`, and count the fresh
    /// entries — one pass per row, with the intermediate product living
    /// only in the per-row scratch, never as a standalone matrix.
    ///
    /// Returns `(C ∪ fresh, nnz(fresh), fresh if want_fresh)`.
    pub fn mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<(Self, usize, Option<Self>)> {
        if a.ncols != b.nrows {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_accum_compmask",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        if (a.nrows, b.ncols) != self.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_accum_compmask",
                lhs: (a.nrows, b.ncols),
                rhs: self.shape(),
            });
        }
        let mut marker: Vec<bool> = vec![false; b.ncols as usize];
        let mut acc_row_ptr = Vec::with_capacity(self.nrows as usize + 1);
        acc_row_ptr.push(0 as Index);
        let mut acc_cols: Vec<Index> = Vec::with_capacity(self.cols.len());
        let mut fresh_row_ptr = want_fresh.then(|| {
            let mut rp = Vec::with_capacity(self.nrows as usize + 1);
            rp.push(0 as Index);
            rp
        });
        let mut fresh_cols: Vec<Index> = Vec::new();
        let mut fresh_nnz = 0usize;
        let mut scratch: Vec<Index> = Vec::new();
        for i in 0..self.nrows {
            let crow = self.row(i);
            scratch.clear();
            for &k in a.row(i) {
                for &j in b.row(k) {
                    if crow.binary_search(&j).is_ok() {
                        continue;
                    }
                    if !marker[j as usize] {
                        marker[j as usize] = true;
                        scratch.push(j);
                    }
                }
            }
            scratch.sort_unstable();
            for &j in &scratch {
                marker[j as usize] = false;
            }
            fresh_nnz += scratch.len();
            // `crow` and `scratch` are disjoint sorted sets: plain merge.
            let (mut x, mut y) = (0usize, 0usize);
            while x < crow.len() && y < scratch.len() {
                if crow[x] < scratch[y] {
                    acc_cols.push(crow[x]);
                    x += 1;
                } else {
                    acc_cols.push(scratch[y]);
                    y += 1;
                }
            }
            acc_cols.extend_from_slice(&crow[x..]);
            acc_cols.extend_from_slice(&scratch[y..]);
            acc_row_ptr.push(acc_cols.len() as Index);
            if let Some(rp) = fresh_row_ptr.as_mut() {
                fresh_cols.extend_from_slice(&scratch);
                rp.push(fresh_cols.len() as Index);
            }
        }
        let acc = CsrBool {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: acc_row_ptr,
            cols: acc_cols,
        };
        let fresh = fresh_row_ptr.map(|rp| CsrBool {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: rp,
            cols: fresh_cols,
        });
        Ok((acc, fresh_nnz, fresh))
    }

    /// Element-wise Boolean sum `C = A + B` (set union), the paper's
    /// `A += B` building block.
    pub fn ewise_add(&self, other: &Self) -> Result<Self> {
        self.check_same_shape(other, "ewise_add")?;
        let mut row_ptr = Vec::with_capacity(self.nrows as usize + 1);
        row_ptr.push(0 as Index);
        let mut cols = Vec::with_capacity(self.nnz() + other.nnz());
        for i in 0..self.nrows {
            let (a, b) = (self.row(i), other.row(i));
            let (mut x, mut y) = (0usize, 0usize);
            while x < a.len() || y < b.len() {
                let next = match (a.get(x), b.get(y)) {
                    (Some(&u), Some(&v)) => {
                        if u == v {
                            x += 1;
                            y += 1;
                        } else if u < v {
                            x += 1;
                        } else {
                            y += 1;
                        }
                        u.min(v)
                    }
                    (Some(&u), None) => {
                        x += 1;
                        u
                    }
                    (None, Some(&v)) => {
                        y += 1;
                        v
                    }
                    (None, None) => unreachable!(),
                };
                cols.push(next);
            }
            row_ptr.push(cols.len() as Index);
        }
        Ok(CsrBool {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            cols,
        })
    }

    /// Element-wise Boolean product `C = A ∧ B` (set intersection).
    /// GraphBLAS `eWiseMult`; used by applications for masking.
    pub fn ewise_mult(&self, other: &Self) -> Result<Self> {
        self.check_same_shape(other, "ewise_mult")?;
        let mut row_ptr = Vec::with_capacity(self.nrows as usize + 1);
        row_ptr.push(0 as Index);
        let mut cols = Vec::new();
        for i in 0..self.nrows {
            let (a, b) = (self.row(i), other.row(i));
            let (mut x, mut y) = (0usize, 0usize);
            while x < a.len() && y < b.len() {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Equal => {
                        cols.push(a[x]);
                        x += 1;
                        y += 1;
                    }
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                }
            }
            row_ptr.push(cols.len() as Index);
        }
        Ok(CsrBool {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            cols,
        })
    }

    /// Kronecker product `K = A ⊗ B` of shape `(mA·mB) × (nA·nB)`.
    pub fn kron(&self, other: &Self) -> Result<Self> {
        let nrows = (self.nrows as u64).checked_mul(other.nrows as u64);
        let ncols = (self.ncols as u64).checked_mul(other.ncols as u64);
        let (nrows, ncols) = match (nrows, ncols) {
            (Some(r), Some(c)) if r <= u32::MAX as u64 && c <= u32::MAX as u64 => {
                (r as Index, c as Index)
            }
            _ => {
                return Err(SpblaError::InvalidDimension(format!(
                    "kron result {}x{} · {}x{} overflows Index",
                    self.nrows, self.ncols, other.nrows, other.ncols
                )))
            }
        };
        let mut row_ptr = Vec::with_capacity(nrows as usize + 1);
        row_ptr.push(0 as Index);
        let mut cols = Vec::with_capacity(self.nnz() * other.nnz());
        for i1 in 0..self.nrows {
            for i2 in 0..other.nrows {
                for &j1 in self.row(i1) {
                    for &j2 in other.row(i2) {
                        cols.push(j1 * other.ncols + j2);
                    }
                }
                row_ptr.push(cols.len() as Index);
            }
        }
        Ok(CsrBool {
            nrows,
            ncols,
            row_ptr,
            cols,
        })
    }

    /// Transpose `Mᵀ` (counting sort over columns).
    pub fn transpose(&self) -> Self {
        let mut counts = vec![0 as Index; self.ncols as usize + 1];
        for &j in &self.cols {
            counts[j as usize + 1] += 1;
        }
        for c in 0..self.ncols as usize {
            counts[c + 1] += counts[c];
        }
        let row_ptr = counts.clone();
        let mut cols = vec![0 as Index; self.nnz()];
        let mut cursor = counts;
        for i in 0..self.nrows {
            for &j in self.row(i) {
                cols[cursor[j as usize] as usize] = i;
                cursor[j as usize] += 1;
            }
        }
        CsrBool {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            cols,
        }
    }

    /// Extract the sub-matrix `M[i0 .. i0+nrows, j0 .. j0+ncols]`.
    pub fn submatrix(&self, i0: Index, j0: Index, nrows: Index, ncols: Index) -> Result<Self> {
        let (ie, je) = (i0 as u64 + nrows as u64, j0 as u64 + ncols as u64);
        if ie > self.nrows as u64 || je > self.ncols as u64 {
            return Err(SpblaError::InvalidDimension(format!(
                "submatrix [{i0}+{nrows}, {j0}+{ncols}] exceeds {}x{}",
                self.nrows, self.ncols
            )));
        }
        let mut row_ptr = Vec::with_capacity(nrows as usize + 1);
        row_ptr.push(0 as Index);
        let mut cols = Vec::new();
        for i in i0..i0 + nrows {
            let row = self.row(i);
            let lo = row.partition_point(|&j| j < j0);
            let hi = row.partition_point(|&j| j < j0 + ncols);
            cols.extend(row[lo..hi].iter().map(|&j| j - j0));
            row_ptr.push(cols.len() as Index);
        }
        Ok(CsrBool {
            nrows,
            ncols,
            row_ptr,
            cols,
        })
    }

    /// Reduce along rows: `V[i] = ⋁_j M[i][j]` — the set of non-empty
    /// rows, i.e. the paper's `reduceToColumn`.
    pub fn reduce_to_column(&self) -> Vec<Index> {
        (0..self.nrows).filter(|&i| self.row_nnz(i) > 0).collect()
    }

    /// Reduce along columns: the set of non-empty columns.
    pub fn reduce_to_row(&self) -> Vec<Index> {
        let mut seen = vec![false; self.ncols as usize];
        for &j in &self.cols {
            seen[j as usize] = true;
        }
        (0..self.ncols).filter(|&j| seen[j as usize]).collect()
    }

    /// Sparse-vector × matrix product over the Boolean semiring:
    /// `out = ⋃_{i ∈ set} row(i)` — the frontier-push step of matrix BFS.
    /// `set` must be sorted ascending.
    pub fn vxm(&self, set: &[Index]) -> Vec<Index> {
        let mut marker = vec![false; self.ncols as usize];
        let mut out = Vec::new();
        for &i in set {
            for &j in self.row(i) {
                if !marker[j as usize] {
                    marker[j as usize] = true;
                    out.push(j);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrBool {
        CsrBool::from_pairs(3, 4, &[(0, 1), (0, 3), (1, 0), (2, 2)]).unwrap()
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let m = CsrBool::from_pairs(2, 2, &[(1, 1), (0, 0), (1, 1), (0, 1)]).unwrap();
        assert_eq!(m.to_pairs(), vec![(0, 0), (0, 1), (1, 1)]);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn from_pairs_rejects_out_of_bounds() {
        let e = CsrBool::from_pairs(2, 2, &[(2, 0)]).unwrap_err();
        assert!(matches!(e, SpblaError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn get_and_rows() {
        let m = small();
        assert!(m.get(0, 1));
        assert!(m.get(0, 3));
        assert!(!m.get(0, 0));
        assert_eq!(m.row(0), &[1, 3]);
        assert_eq!(m.row_nnz(1), 1);
    }

    #[test]
    fn mxm_matches_manual() {
        // A: 0->1, 1->2; B: 1->2, 2->0  =>  A·B: 0->2, 1->0
        let a = CsrBool::from_pairs(3, 3, &[(0, 1), (1, 2)]).unwrap();
        let b = CsrBool::from_pairs(3, 3, &[(1, 2), (2, 0)]).unwrap();
        assert_eq!(a.mxm(&b).unwrap().to_pairs(), vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn mxm_identity_is_noop() {
        let m = small();
        let i3 = CsrBool::identity(3);
        let i4 = CsrBool::identity(4);
        assert_eq!(i3.mxm(&m).unwrap(), m);
        assert_eq!(m.mxm(&i4).unwrap(), m);
    }

    #[test]
    fn mxm_dimension_mismatch() {
        let a = CsrBool::zeros(2, 3);
        let b = CsrBool::zeros(2, 3);
        assert!(matches!(
            a.mxm(&b),
            Err(SpblaError::DimensionMismatch { op: "mxm", .. })
        ));
    }

    #[test]
    fn ewise_add_is_union() {
        let a = CsrBool::from_pairs(2, 3, &[(0, 0), (1, 2)]).unwrap();
        let b = CsrBool::from_pairs(2, 3, &[(0, 0), (0, 1)]).unwrap();
        let c = a.ewise_add(&b).unwrap();
        assert_eq!(c.to_pairs(), vec![(0, 0), (0, 1), (1, 2)]);
    }

    #[test]
    fn ewise_mult_is_intersection() {
        let a = CsrBool::from_pairs(2, 3, &[(0, 0), (0, 2), (1, 2)]).unwrap();
        let b = CsrBool::from_pairs(2, 3, &[(0, 0), (0, 1), (1, 2)]).unwrap();
        let c = a.ewise_mult(&b).unwrap();
        assert_eq!(c.to_pairs(), vec![(0, 0), (1, 2)]);
    }

    #[test]
    fn kron_small() {
        let a = CsrBool::from_pairs(2, 2, &[(0, 1)]).unwrap();
        let b = CsrBool::from_pairs(2, 2, &[(1, 0)]).unwrap();
        let k = a.kron(&b).unwrap();
        assert_eq!(k.shape(), (4, 4));
        // (0,1)⊗(1,0): row = 0*2+1 = 1, col = 1*2+0 = 2.
        assert_eq!(k.to_pairs(), vec![(1, 2)]);
    }

    #[test]
    fn transpose_involution() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert!(t.get(1, 0) && t.get(3, 0) && t.get(0, 1) && t.get(2, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_extracts_window() {
        let m = small();
        let s = m.submatrix(0, 1, 2, 3).unwrap();
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.to_pairs(), vec![(0, 0), (0, 2)]);
        assert!(m.submatrix(1, 1, 3, 1).is_err());
    }

    #[test]
    fn reductions() {
        let m = small();
        assert_eq!(m.reduce_to_column(), vec![0, 1, 2]);
        assert_eq!(m.reduce_to_row(), vec![0, 1, 2, 3]);
        let empty_row = CsrBool::from_pairs(3, 2, &[(0, 0), (2, 1)]).unwrap();
        assert_eq!(empty_row.reduce_to_column(), vec![0, 2]);
    }

    #[test]
    fn vxm_frontier_push() {
        let m = small();
        assert_eq!(m.vxm(&[0, 1]), vec![0, 1, 3]);
        assert_eq!(m.vxm(&[]), Vec::<Index>::new());
    }

    #[test]
    fn memory_formula() {
        let m = small();
        assert_eq!(m.memory_bytes(), (3 + 1 + 4) * 4);
    }

    #[test]
    fn validate_catches_corruption() {
        let mut m = small();
        m.cols[0] = 99; // out of bounds column
        assert!(m.validate().is_err());
    }
}
