//! Row-aligned dense bit matrices — the dense Boolean backend.
//!
//! For dense-ish operands (closure iterates saturate quickly in the
//! paper's applications) a bit-parallel representation beats any sparse
//! format: a Boolean `mxm` row is just word-wise `OR`s of B-rows
//! selected by A's set bits, 64 cells per instruction. This backend is
//! the "select the implementation by task" story of the unified-SPbLA
//! plan, and the sparse-vs-dense crossover ablation's subject.

use rayon::prelude::*;

use crate::error::{Result, SpblaError};
use crate::index::{Index, Pair};

/// A dense Boolean matrix with each row padded to a whole number of
/// 64-bit words (so rows can be OR-ed word-wise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    nrows: Index,
    ncols: Index,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// An all-false `nrows × ncols` matrix.
    pub fn zeros(nrows: Index, ncols: Index) -> Self {
        let words_per_row = (ncols as usize).div_ceil(64);
        BitMatrix {
            nrows,
            ncols,
            words_per_row,
            words: vec![0; nrows as usize * words_per_row],
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: Index) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Build from coordinate pairs (bounds-checked).
    pub fn from_pairs(nrows: Index, ncols: Index, pairs: &[Pair]) -> Result<Self> {
        let mut m = BitMatrix::zeros(nrows, ncols);
        for &(i, j) in pairs {
            if i >= nrows || j >= ncols {
                return Err(SpblaError::IndexOutOfBounds {
                    row: i,
                    col: j,
                    shape: (nrows, ncols),
                });
            }
            m.set(i, j, true);
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    /// The words of row `i`.
    pub fn row_words(&self, i: Index) -> &[u64] {
        let base = i as usize * self.words_per_row;
        &self.words[base..base + self.words_per_row]
    }

    fn row_words_mut(&mut self, i: Index) -> &mut [u64] {
        let base = i as usize * self.words_per_row;
        &mut self.words[base..base + self.words_per_row]
    }

    /// Read cell `(i, j)`.
    pub fn get(&self, i: Index, j: Index) -> bool {
        (self.row_words(i)[j as usize / 64] >> (j % 64)) & 1 == 1
    }

    /// Write cell `(i, j)`.
    pub fn set(&mut self, i: Index, j: Index, v: bool) {
        let w = &mut self.row_words_mut(i)[j as usize / 64];
        if v {
            *w |= 1u64 << (j % 64);
        } else {
            *w &= !(1u64 << (j % 64));
        }
    }

    /// Number of `true` cells.
    pub fn nnz(&self) -> usize {
        self.words.par_iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no cell is `true`.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` coordinates, row-major.
    pub fn to_pairs(&self) -> Vec<Pair> {
        let mut out = Vec::new();
        for i in 0..self.nrows {
            for (wi, &w) in self.row_words(i).iter().enumerate() {
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    out.push((i, wi as Index * 64 + b));
                    bits &= bits - 1;
                }
            }
        }
        out
    }

    /// Storage footprint in bytes (`⌈n/64⌉ · 8 · m`) — quadratic, the
    /// price of density.
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Bit-parallel Boolean product: row `i` of `C` is the OR of the
    /// `B`-rows selected by the set bits of row `i` of `A`.
    pub fn mxm(&self, other: &Self) -> Result<Self> {
        if self.ncols != other.nrows {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut c = BitMatrix::zeros(self.nrows, other.ncols);
        let wpr_out = c.words_per_row;
        let out = &mut c.words;
        out.par_chunks_mut(wpr_out.max(1))
            .enumerate()
            .for_each(|(i, dst)| {
                let i = i as Index;
                for (wi, &aw) in self.row_words(i).iter().enumerate() {
                    let mut bits = aw;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        let k = wi as Index * 64 + b;
                        if k < other.nrows {
                            for (d, &s) in dst.iter_mut().zip(other.row_words(k)) {
                                *d |= s;
                            }
                        }
                        bits &= bits - 1;
                    }
                }
            });
        Ok(c)
    }

    /// Masked product `C = (A · B) ∧ M`, fused per row: the mask words
    /// clear rejected bits before the row leaves the kernel, so no full
    /// intermediate product is materialised.
    pub fn mxm_masked(&self, other: &Self, mask: &Self) -> Result<Self> {
        self.mxm_filtered(other, mask, false)
    }

    /// Complemented-mask product `C = (A · B) ∧ ¬M` (word-wise and-not).
    pub fn mxm_compmask(&self, other: &Self, mask: &Self) -> Result<Self> {
        self.mxm_filtered(other, mask, true)
    }

    fn mxm_filtered(&self, other: &Self, mask: &Self, complement: bool) -> Result<Self> {
        if self.ncols != other.nrows {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_masked",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if (self.nrows, other.ncols) != mask.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_masked",
                lhs: (self.nrows, other.ncols),
                rhs: mask.shape(),
            });
        }
        let mut c = BitMatrix::zeros(self.nrows, other.ncols);
        let wpr_out = c.words_per_row;
        let out = &mut c.words;
        out.par_chunks_mut(wpr_out.max(1))
            .enumerate()
            .for_each(|(i, dst)| {
                let i = i as Index;
                for (wi, &aw) in self.row_words(i).iter().enumerate() {
                    let mut bits = aw;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        let k = wi as Index * 64 + b;
                        if k < other.nrows {
                            for (d, &s) in dst.iter_mut().zip(other.row_words(k)) {
                                *d |= s;
                            }
                        }
                        bits &= bits - 1;
                    }
                }
                for (d, &m) in dst.iter_mut().zip(mask.row_words(i)) {
                    if complement {
                        *d &= !m;
                    } else {
                        *d &= m;
                    }
                }
            });
        Ok(c)
    }

    /// Fused semi-naïve step over the accumulator `self = C`: per row,
    /// compute the product words, keep `fresh = prod ∧ ¬C`, OR them into
    /// the accumulator, and popcount the fresh bits — one parallel sweep,
    /// no standalone intermediate matrix.
    ///
    /// Returns `(C ∪ fresh, nnz(fresh), fresh if want_fresh)`.
    pub fn mxm_accum_compmask(
        &self,
        a: &Self,
        b: &Self,
        want_fresh: bool,
    ) -> Result<(Self, usize, Option<Self>)> {
        if a.ncols != b.nrows {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_accum_compmask",
                lhs: a.shape(),
                rhs: b.shape(),
            });
        }
        if (a.nrows, b.ncols) != self.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_accum_compmask",
                lhs: (a.nrows, b.ncols),
                rhs: self.shape(),
            });
        }
        // Product row → `fr`, then fresh-filter against `dst` (the C row),
        // accumulate, and popcount, all in one visit of each word.
        let fused_row = |i: Index, dst: &mut [u64], fr: &mut [u64]| -> usize {
            for (wi, &aw) in a.row_words(i).iter().enumerate() {
                let mut bits = aw;
                while bits != 0 {
                    let bit = bits.trailing_zeros();
                    let k = wi as Index * 64 + bit;
                    if k < b.nrows {
                        for (f, &s) in fr.iter_mut().zip(b.row_words(k)) {
                            *f |= s;
                        }
                    }
                    bits &= bits - 1;
                }
            }
            let mut count = 0usize;
            for (f, d) in fr.iter_mut().zip(dst.iter_mut()) {
                *f &= !*d;
                *d |= *f;
                count += f.count_ones() as usize;
            }
            count
        };
        let mut acc = self.clone();
        let wpr = acc.words_per_row.max(1);
        let mut fresh = want_fresh.then(|| BitMatrix::zeros(self.nrows, self.ncols));
        let fresh_nnz: usize = match fresh.as_mut() {
            Some(fm) => acc
                .words
                .par_chunks_mut(wpr)
                .zip(fm.words.par_chunks_mut(wpr))
                .enumerate()
                .map(|(i, (dst, fr))| fused_row(i as Index, dst, fr))
                .sum(),
            None => acc
                .words
                .par_chunks_mut(wpr)
                .enumerate()
                .map(|(i, dst)| fused_row(i as Index, dst, &mut vec![0u64; dst.len()]))
                .sum(),
        };
        Ok((acc, fresh_nnz, fresh))
    }

    /// Word-wise element-wise or.
    pub fn ewise_add(&self, other: &Self) -> Result<Self> {
        self.check_same_shape(other, "ewise_add")?;
        let mut c = self.clone();
        c.words
            .par_iter_mut()
            .zip(other.words.par_iter())
            .for_each(|(a, &b)| *a |= b);
        Ok(c)
    }

    /// Word-wise element-wise and.
    pub fn ewise_mult(&self, other: &Self) -> Result<Self> {
        self.check_same_shape(other, "ewise_mult")?;
        let mut c = self.clone();
        c.words
            .par_iter_mut()
            .zip(other.words.par_iter())
            .for_each(|(a, &b)| *a &= b);
        Ok(c)
    }

    fn check_same_shape(&self, other: &Self, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }

    /// Kronecker product (kept dense; errors if the result would exceed
    /// `Index` range).
    pub fn kron(&self, other: &Self) -> Result<Self> {
        let nrows = (self.nrows as u64)
            .checked_mul(other.nrows as u64)
            .filter(|&r| r <= u32::MAX as u64)
            .ok_or_else(|| SpblaError::InvalidDimension("kron rows overflow".into()))?;
        let ncols = (self.ncols as u64)
            .checked_mul(other.ncols as u64)
            .filter(|&c| c <= u32::MAX as u64)
            .ok_or_else(|| SpblaError::InvalidDimension("kron cols overflow".into()))?;
        let mut c = BitMatrix::zeros(nrows as Index, ncols as Index);
        for (i1, j1) in self.to_pairs() {
            for (i2, j2) in other.to_pairs() {
                c.set(i1 * other.nrows + i2, j1 * other.ncols + j2, true);
            }
        }
        Ok(c)
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut c = BitMatrix::zeros(self.ncols, self.nrows);
        for (i, j) in self.to_pairs() {
            c.set(j, i, true);
        }
        c
    }

    /// Extract `M[i0 .. i0+nrows, j0 .. j0+ncols]`.
    pub fn submatrix(&self, i0: Index, j0: Index, nrows: Index, ncols: Index) -> Result<Self> {
        if i0 as u64 + nrows as u64 > self.nrows as u64
            || j0 as u64 + ncols as u64 > self.ncols as u64
        {
            return Err(SpblaError::InvalidDimension(format!(
                "submatrix [{i0}+{nrows}, {j0}+{ncols}] exceeds {}x{}",
                self.nrows, self.ncols
            )));
        }
        let mut c = BitMatrix::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                if self.get(i0 + i, j0 + j) {
                    c.set(i, j, true);
                }
            }
        }
        Ok(c)
    }

    /// Indices of non-empty rows.
    pub fn reduce_to_column(&self) -> Vec<Index> {
        (0..self.nrows)
            .filter(|&i| self.row_words(i).iter().any(|&w| w != 0))
            .collect()
    }

    /// Indices of non-empty columns.
    pub fn reduce_to_row(&self) -> Vec<Index> {
        let mut acc = vec![0u64; self.words_per_row];
        for i in 0..self.nrows {
            for (a, &w) in acc.iter_mut().zip(self.row_words(i)) {
                *a |= w;
            }
        }
        let mut out = Vec::new();
        for (wi, &w) in acc.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(wi as Index * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Union of the rows selected by `set` (the `vxm` frontier push).
    pub fn vxm(&self, set: &[Index]) -> Vec<Index> {
        let mut acc = vec![0u64; self.words_per_row];
        for &i in set {
            for (a, &w) in acc.iter_mut().zip(self.row_words(i)) {
                *a |= w;
            }
        }
        let mut out = Vec::new();
        for (wi, &w) in acc.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push(wi as Index * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csr::CsrBool;

    fn csr(pairs: &[(u32, u32)], m: u32, n: u32) -> CsrBool {
        CsrBool::from_pairs(m, n, pairs).unwrap()
    }

    #[test]
    fn roundtrip_and_counts() {
        let pairs = [(0u32, 63u32), (0, 64), (1, 0), (2, 127)];
        let m = BitMatrix::from_pairs(3, 128, &pairs).unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.to_pairs(), pairs.to_vec());
        assert!(m.get(0, 64) && !m.get(0, 65));
        assert!(BitMatrix::from_pairs(2, 2, &[(2, 0)]).is_err());
    }

    #[test]
    fn mxm_matches_csr_reference() {
        let pa = [(0u32, 1u32), (1, 2), (2, 0), (2, 2)];
        let pb = [(0u32, 0u32), (1, 2), (2, 1)];
        let ba = BitMatrix::from_pairs(3, 3, &pa).unwrap();
        let bb = BitMatrix::from_pairs(3, 3, &pb).unwrap();
        let expect = csr(&pa, 3, 3).mxm(&csr(&pb, 3, 3)).unwrap().to_pairs();
        assert_eq!(ba.mxm(&bb).unwrap().to_pairs(), expect);
    }

    #[test]
    fn mxm_across_word_boundaries() {
        // 200-column matrices exercise multi-word rows.
        let pa: Vec<(u32, u32)> = (0..200).map(|j| (0, j)).collect();
        let pb: Vec<(u32, u32)> = (0..200).map(|i| (i, (i * 7) % 200)).collect();
        let ba = BitMatrix::from_pairs(1, 200, &pa).unwrap();
        let bb = BitMatrix::from_pairs(200, 200, &pb).unwrap();
        let expect = csr(&pa, 1, 200)
            .mxm(&csr(&pb, 200, 200))
            .unwrap()
            .to_pairs();
        assert_eq!(ba.mxm(&bb).unwrap().to_pairs(), expect);
    }

    #[test]
    fn elementwise_and_structure_ops() {
        let pa = [(0u32, 1u32), (1, 3), (2, 0)];
        let pb = [(0u32, 1u32), (2, 2)];
        let ba = BitMatrix::from_pairs(3, 4, &pa).unwrap();
        let bb = BitMatrix::from_pairs(3, 4, &pb).unwrap();
        let ca = csr(&pa, 3, 4);
        let cb = csr(&pb, 3, 4);
        assert_eq!(
            ba.ewise_add(&bb).unwrap().to_pairs(),
            ca.ewise_add(&cb).unwrap().to_pairs()
        );
        assert_eq!(
            ba.ewise_mult(&bb).unwrap().to_pairs(),
            ca.ewise_mult(&cb).unwrap().to_pairs()
        );
        assert_eq!(ba.transpose().to_pairs(), ca.transpose().to_pairs());
        assert_eq!(
            ba.submatrix(0, 1, 2, 3).unwrap().to_pairs(),
            ca.submatrix(0, 1, 2, 3).unwrap().to_pairs()
        );
        assert_eq!(ba.reduce_to_column(), ca.reduce_to_column());
        assert_eq!(ba.reduce_to_row(), ca.reduce_to_row());
        assert_eq!(ba.vxm(&[0, 1]), ca.vxm(&[0, 1]));
        let k = ba.kron(&bb).unwrap();
        assert_eq!(k.to_pairs(), ca.kron(&cb).unwrap().to_pairs());
    }

    #[test]
    fn identity_and_memory() {
        let id = BitMatrix::identity(100);
        assert_eq!(id.nnz(), 100);
        // 100 rows × 2 words × 8 bytes.
        assert_eq!(id.memory_bytes(), 1600);
        let m = BitMatrix::from_pairs(100, 100, &[(5, 7)]).unwrap();
        assert_eq!(m.mxm(&id).unwrap().to_pairs(), vec![(5, 7)]);
    }
}
