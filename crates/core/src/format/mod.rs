//! Sparse Boolean matrix storage formats.
//!
//! * [`csr::CsrBool`] — compressed sparse row, the cuBool format:
//!   `(m + 1 + nnz) · sizeof(Index)` bytes;
//! * [`coo::CooBool`] — coordinate list, the clBool format:
//!   `2 · nnz · sizeof(Index)` bytes, better for hypersparse matrices with
//!   many empty rows;
//! * [`dense::DenseBool`] — a bit matrix used as the testing oracle;
//! * [`bitmat::BitMatrix`] — a row-aligned dense bit matrix, the storage
//!   of the dense CPU backend (bit-parallel `mxm`).
//!
//! The sequential operations on `CsrBool` double as the CPU reference
//! backend: every simulated-GPU kernel is tested against them.

pub mod bitmat;
pub mod convert;
pub mod coo;
pub mod csr;
pub mod dense;
