//! Dense bit-matrix oracle used by tests and property checks.

use crate::index::{Index, Pair};

/// A dense Boolean matrix backed by a bitset. Quadratic memory — only for
/// small test instances, where it provides trivially-correct reference
/// implementations of every operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseBool {
    nrows: Index,
    ncols: Index,
    bits: Vec<u64>,
}

impl DenseBool {
    /// An all-false `nrows × ncols` matrix.
    pub fn zeros(nrows: Index, ncols: Index) -> Self {
        let words = (nrows as usize * ncols as usize).div_ceil(64);
        DenseBool {
            nrows,
            ncols,
            bits: vec![0; words],
        }
    }

    /// Build from coordinates (no bounds error: panics on misuse, tests
    /// only).
    pub fn from_pairs(nrows: Index, ncols: Index, pairs: &[Pair]) -> Self {
        let mut m = DenseBool::zeros(nrows, ncols);
        for &(i, j) in pairs {
            m.set(i, j, true);
        }
        m
    }

    #[inline]
    fn bit(&self, i: Index, j: Index) -> usize {
        debug_assert!(i < self.nrows && j < self.ncols);
        i as usize * self.ncols as usize + j as usize
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Read cell `(i, j)`.
    pub fn get(&self, i: Index, j: Index) -> bool {
        let b = self.bit(i, j);
        (self.bits[b / 64] >> (b % 64)) & 1 == 1
    }

    /// Write cell `(i, j)`.
    pub fn set(&mut self, i: Index, j: Index, v: bool) {
        let b = self.bit(i, j);
        if v {
            self.bits[b / 64] |= 1 << (b % 64);
        } else {
            self.bits[b / 64] &= !(1 << (b % 64));
        }
    }

    /// Number of `true` cells.
    pub fn nnz(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` coordinates, row-major.
    pub fn to_pairs(&self) -> Vec<Pair> {
        let mut out = Vec::new();
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                if self.get(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Reference Boolean product.
    pub fn mxm(&self, other: &Self) -> Self {
        assert_eq!(self.ncols, other.nrows);
        let mut c = DenseBool::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                if self.get(i, k) {
                    for j in 0..other.ncols {
                        if other.get(k, j) {
                            c.set(i, j, true);
                        }
                    }
                }
            }
        }
        c
    }

    /// Reference element-wise or.
    pub fn ewise_add(&self, other: &Self) -> Self {
        assert_eq!((self.nrows, self.ncols), (other.nrows, other.ncols));
        let mut c = self.clone();
        for (w, o) in c.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
        c
    }

    /// Reference Kronecker product.
    pub fn kron(&self, other: &Self) -> Self {
        let mut c = DenseBool::zeros(self.nrows * other.nrows, self.ncols * other.ncols);
        for i1 in 0..self.nrows {
            for j1 in 0..self.ncols {
                if self.get(i1, j1) {
                    for i2 in 0..other.nrows {
                        for j2 in 0..other.ncols {
                            if other.get(i2, j2) {
                                c.set(i1 * other.nrows + i2, j1 * other.ncols + j2, true);
                            }
                        }
                    }
                }
            }
        }
        c
    }

    /// Reference transpose.
    pub fn transpose(&self) -> Self {
        let mut c = DenseBool::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                if self.get(i, j) {
                    c.set(j, i, true);
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::csr::CsrBool;

    #[test]
    fn dense_agrees_with_csr_on_product() {
        let pairs_a = [(0u32, 1u32), (1, 2), (2, 0), (2, 2)];
        let pairs_b = [(0u32, 0u32), (1, 2), (2, 1)];
        let da = DenseBool::from_pairs(3, 3, &pairs_a);
        let db = DenseBool::from_pairs(3, 3, &pairs_b);
        let ca = CsrBool::from_pairs(3, 3, &pairs_a).unwrap();
        let cb = CsrBool::from_pairs(3, 3, &pairs_b).unwrap();
        assert_eq!(da.mxm(&db).to_pairs(), ca.mxm(&cb).unwrap().to_pairs());
    }

    #[test]
    fn set_get_and_clear() {
        let mut m = DenseBool::zeros(5, 7);
        m.set(4, 6, true);
        assert!(m.get(4, 6));
        assert_eq!(m.nnz(), 1);
        m.set(4, 6, false);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn kron_and_transpose_agree_with_csr() {
        let pa = [(0u32, 1u32), (1, 0)];
        let pb = [(0u32, 0u32), (1, 1)];
        let da = DenseBool::from_pairs(2, 2, &pa);
        let db = DenseBool::from_pairs(2, 2, &pb);
        let ca = CsrBool::from_pairs(2, 2, &pa).unwrap();
        let cb = CsrBool::from_pairs(2, 2, &pb).unwrap();
        assert_eq!(da.kron(&db).to_pairs(), ca.kron(&cb).unwrap().to_pairs());
        assert_eq!(da.transpose().to_pairs(), ca.transpose().to_pairs());
    }
}
