//! Lossless conversions between storage formats.

use crate::format::coo::CooBool;
use crate::format::csr::CsrBool;
use crate::format::dense::DenseBool;
use crate::index::Index;

impl From<&CooBool> for CsrBool {
    fn from(coo: &CooBool) -> CsrBool {
        let mut row_ptr = vec![0 as Index; coo.nrows() as usize + 1];
        for &i in coo.rows() {
            row_ptr[i as usize + 1] += 1;
        }
        for r in 0..coo.nrows() as usize {
            row_ptr[r + 1] += row_ptr[r];
        }
        CsrBool::from_raw(coo.nrows(), coo.ncols(), row_ptr, coo.cols().to_vec())
    }
}

impl From<&CsrBool> for CooBool {
    fn from(csr: &CsrBool) -> CooBool {
        let mut rows = Vec::with_capacity(csr.nnz());
        for i in 0..csr.nrows() {
            rows.extend(std::iter::repeat_n(i, csr.row_nnz(i)));
        }
        CooBool::from_raw(csr.nrows(), csr.ncols(), rows, csr.cols().to_vec())
    }
}

impl From<&CsrBool> for DenseBool {
    fn from(csr: &CsrBool) -> DenseBool {
        DenseBool::from_pairs(csr.nrows(), csr.ncols(), &csr.to_pairs())
    }
}

impl From<&DenseBool> for CsrBool {
    fn from(d: &DenseBool) -> CsrBool {
        CsrBool::from_pairs(d.nrows(), d.ncols(), &d.to_pairs())
            .expect("dense pairs are in bounds by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_coo_roundtrip() {
        let csr = CsrBool::from_pairs(4, 5, &[(0, 4), (2, 1), (2, 3), (3, 0)]).unwrap();
        let coo = CooBool::from(&csr);
        assert_eq!(coo.to_pairs(), csr.to_pairs());
        let back = CsrBool::from(&coo);
        assert_eq!(back, csr);
    }

    #[test]
    fn csr_dense_roundtrip() {
        let csr = CsrBool::from_pairs(3, 3, &[(0, 0), (1, 2), (2, 1)]).unwrap();
        let dense = DenseBool::from(&csr);
        assert_eq!(CsrBool::from(&dense), csr);
    }

    #[test]
    fn empty_roundtrip() {
        let csr = CsrBool::zeros(7, 2);
        let coo = CooBool::from(&csr);
        assert_eq!(coo.nnz(), 0);
        assert_eq!(CsrBool::from(&coo), csr);
    }
}
