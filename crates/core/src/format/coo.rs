//! Coordinate-format Boolean matrices (the clBool storage format).

use crate::error::{Result, SpblaError};
use crate::index::{pack, unpack, Index, Pair};

/// A Boolean sparse matrix as parallel `(rows, cols)` arrays, sorted
/// row-major and deduplicated.
///
/// The paper motivates COO over CSR for very sparse matrices with many
/// empty rows: footprint is `2 · nnz · sizeof(Index)` bytes, independent
/// of the row count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CooBool {
    nrows: Index,
    ncols: Index,
    rows: Vec<Index>,
    cols: Vec<Index>,
}

impl CooBool {
    /// An empty `nrows × ncols` matrix.
    pub fn zeros(nrows: Index, ncols: Index) -> Self {
        CooBool {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
        }
    }

    /// Build from coordinate pairs, sorting and deduplicating.
    pub fn from_pairs(nrows: Index, ncols: Index, pairs: &[Pair]) -> Result<Self> {
        for &(i, j) in pairs {
            if i >= nrows || j >= ncols {
                return Err(SpblaError::IndexOutOfBounds {
                    row: i,
                    col: j,
                    shape: (nrows, ncols),
                });
            }
        }
        let mut keys: Vec<u64> = pairs.iter().map(|&(i, j)| pack(i, j)).collect();
        keys.sort_unstable();
        keys.dedup();
        let (rows, cols) = keys.into_iter().map(unpack).unzip();
        Ok(CooBool {
            nrows,
            ncols,
            rows,
            cols,
        })
    }

    /// Assemble from raw sorted/deduplicated arrays (debug-asserted).
    pub fn from_raw(nrows: Index, ncols: Index, rows: Vec<Index>, cols: Vec<Index>) -> Self {
        let m = CooBool {
            nrows,
            ncols,
            rows,
            cols,
        };
        debug_assert!(m.validate().is_ok(), "invalid COO: {:?}", m.validate());
        m
    }

    /// Verify sortedness, dedup, and bounds.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.rows.len() != self.cols.len() {
            return Err("rows/cols length mismatch".into());
        }
        let mut prev: Option<u64> = None;
        for (&i, &j) in self.rows.iter().zip(&self.cols) {
            if i >= self.nrows || j >= self.ncols {
                return Err(format!("entry ({i},{j}) out of bounds"));
            }
            let k = pack(i, j);
            if let Some(p) = prev {
                if p >= k {
                    return Err(format!("entries not strictly sorted at ({i},{j})"));
                }
            }
            prev = Some(k);
        }
        Ok(())
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows, self.ncols)
    }

    /// Number of `true` cells.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Whether the matrix has no `true` cells.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row indices array.
    pub fn rows(&self) -> &[Index] {
        &self.rows
    }

    /// Column indices array.
    pub fn cols(&self) -> &[Index] {
        &self.cols
    }

    /// All `true` coordinates in row-major order.
    pub fn to_pairs(&self) -> Vec<Pair> {
        self.rows
            .iter()
            .copied()
            .zip(self.cols.iter().copied())
            .collect()
    }

    /// Entries as packed row-major `u64` keys (sorted ascending).
    pub fn to_keys(&self) -> Vec<u64> {
        self.rows
            .iter()
            .zip(&self.cols)
            .map(|(&i, &j)| pack(i, j))
            .collect()
    }

    /// Rebuild from packed keys (must be sorted and unique).
    pub fn from_keys(nrows: Index, ncols: Index, keys: &[u64]) -> Self {
        let (rows, cols) = keys.iter().map(|&k| unpack(k)).unzip();
        CooBool::from_raw(nrows, ncols, rows, cols)
    }

    /// Storage footprint in bytes: `2 · nnz · sizeof(Index)` — the paper's
    /// COO memory formula.
    pub fn memory_bytes(&self) -> usize {
        2 * self.nnz() * std::mem::size_of::<Index>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_dedups() {
        let m = CooBool::from_pairs(3, 3, &[(2, 1), (0, 0), (2, 1), (0, 2)]).unwrap();
        assert_eq!(m.to_pairs(), vec![(0, 0), (0, 2), (2, 1)]);
    }

    #[test]
    fn bounds_checked() {
        assert!(CooBool::from_pairs(2, 2, &[(0, 5)]).is_err());
    }

    #[test]
    fn key_roundtrip() {
        let m = CooBool::from_pairs(4, 4, &[(1, 2), (3, 0)]).unwrap();
        let keys = m.to_keys();
        assert_eq!(CooBool::from_keys(4, 4, &keys), m);
    }

    #[test]
    fn memory_formula_independent_of_rows() {
        let tall = CooBool::from_pairs(1_000_000, 4, &[(0, 0), (999_999, 3)]).unwrap();
        assert_eq!(tall.memory_bytes(), 2 * 2 * 4);
    }

    #[test]
    fn validate_catches_unsorted() {
        let m = CooBool {
            nrows: 3,
            ncols: 3,
            rows: vec![1, 0],
            cols: vec![0, 0],
        };
        assert!(m.validate().is_err());
    }
}
