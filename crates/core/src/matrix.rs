//! The `Matrix` handle — the library's main primitive.

use std::sync::OnceLock;

use spbla_gpu_sim::with_kernel_label;
use spbla_obs::{labeled, metrics_global, trace_global};

use crate::backend::cl_sim::{self, DeviceCoo};
use crate::backend::cuda_sim::{self, DeviceCsr};
use crate::backend::dispatch::KernelDispatch;
use crate::block::BlockMatrix;
use crate::error::{Result, SpblaError};
use crate::format::bitmat::BitMatrix;
use crate::format::coo::CooBool;
use crate::format::csr::CsrBool;
use crate::index::{Index, Pair};
use crate::instance::{Backend, Instance};
use crate::vector::Vector;

#[derive(Debug)]
enum Repr {
    Cpu(CsrBool),
    Bit(BitMatrix),
    Cuda(DeviceCsr),
    Cl(DeviceCoo),
    /// Adaptive tiled block storage (any backend, [`Instance::is_blocked`]).
    Block(BlockMatrix),
}

/// Dispatch a same-backend binary kernel through [`KernelDispatch`]: one
/// arm per representation, each calling the *same* trait expression, so
/// every `Matrix` op is written once instead of four times.
macro_rules! dispatch2 {
    ($lhs:expr, $rhs:expr, |$a:ident, $b:ident| $body:expr) => {
        match (&$lhs.repr, &$rhs.repr) {
            (Repr::Cpu($a), Repr::Cpu($b)) => Ok(Repr::Cpu($body?)),
            (Repr::Bit($a), Repr::Bit($b)) => Ok(Repr::Bit($body?)),
            (Repr::Cuda($a), Repr::Cuda($b)) => Ok(Repr::Cuda($body?)),
            (Repr::Cl($a), Repr::Cl($b)) => Ok(Repr::Cl($body?)),
            (Repr::Block($a), Repr::Block($b)) => Ok(Repr::Block($body?)),
            _ => Err(SpblaError::BackendMismatch),
        }
    };
}

/// Ternary (masked) variant of [`dispatch2!`].
macro_rules! dispatch3 {
    ($lhs:expr, $rhs:expr, $third:expr, |$a:ident, $b:ident, $c:ident| $body:expr) => {
        match (&$lhs.repr, &$rhs.repr, &$third.repr) {
            (Repr::Cpu($a), Repr::Cpu($b), Repr::Cpu($c)) => Ok(Repr::Cpu($body?)),
            (Repr::Bit($a), Repr::Bit($b), Repr::Bit($c)) => Ok(Repr::Bit($body?)),
            (Repr::Cuda($a), Repr::Cuda($b), Repr::Cuda($c)) => Ok(Repr::Cuda($body?)),
            (Repr::Cl($a), Repr::Cl($b), Repr::Cl($c)) => Ok(Repr::Cl($body?)),
            (Repr::Block($a), Repr::Block($b), Repr::Block($c)) => Ok(Repr::Block($body?)),
            _ => Err(SpblaError::BackendMismatch),
        }
    };
}

/// Unary variant: dispatch a kernel over a single representation.
macro_rules! dispatch1 {
    ($m:expr, |$a:ident| $body:expr) => {
        match &$m.repr {
            Repr::Cpu($a) => $body,
            Repr::Bit($a) => $body,
            Repr::Cuda($a) => $body,
            Repr::Cl($a) => $body,
            Repr::Block($a) => $body,
        }
    };
}

/// Run one kernel-level op under observability: an `"op"` trace span on
/// the owning device's track, a kernel label (so device launch spans
/// emitted inside carry the op's name rather than a generic one), and
/// per-backend per-kernel histograms — rows, nnz in/out, accumulator
/// insertions — in the global [`MetricsRegistry`](spbla_obs::MetricsRegistry).
///
/// When tracing is disabled the span is skipped entirely (one relaxed
/// atomic load); histograms are always on but amortise to a handful of
/// atomic adds per *operation*, not per element.
fn observe_op<R>(
    instance: &Instance,
    kernel: &'static str,
    rows: u64,
    nnz_in: u64,
    f: impl FnOnce() -> Result<R>,
    nnz_out: impl FnOnce(&R) -> u64,
) -> Result<R> {
    let device = instance.device();
    let track = device.map_or(0, |d| d.ordinal());
    let mut span = trace_global().span(kernel, "op", track);
    let insertions_before = device.map_or(0, |d| d.stats().accum_insertions);
    let out = with_kernel_label(kernel, f)?;
    let produced = nnz_out(&out);
    let inserted = device
        .map_or(0, |d| d.stats().accum_insertions)
        .saturating_sub(insertions_before);
    if let Some(span) = span.as_mut() {
        span.arg("rows", rows);
        span.arg("nnz_in", nnz_in);
        span.arg("nnz_out", produced);
        span.arg("insertions", inserted);
    }
    let labels = [("backend", instance.backend().label()), ("kernel", kernel)];
    let reg = metrics_global();
    reg.histogram(&labeled("spbla_kernel_rows", &labels))
        .observe(rows);
    reg.histogram(&labeled("spbla_kernel_nnz_in", &labels))
        .observe(nnz_in);
    reg.histogram(&labeled("spbla_kernel_nnz_out", &labels))
        .observe(produced);
    reg.histogram(&labeled("spbla_kernel_insertions", &labels))
        .observe(inserted);
    Ok(out)
}

/// A sparse Boolean matrix owned by an [`Instance`].
///
/// Operations follow the paper's list: create/fill/read, transpose,
/// sub-matrix extraction, reduce-to-vector, matrix multiplication
/// (`mxm`, plus the multiply-add form `mxm_acc`), element-wise addition,
/// and Kronecker product.
#[derive(Debug)]
pub struct Matrix {
    instance: Instance,
    repr: Repr,
    /// Cached `nnz`. A `Matrix` is immutable — every operation returns a
    /// new handle — so set-once caching *is* mutation invalidation: the
    /// only way to change the structure is to make a new handle with an
    /// empty cache. Ops that know their output count (the fused
    /// accumulate kernel, constructors) prime it at wrap time, making
    /// the fixpoint loops' `nnz()` termination checks free of kernel
    /// launches and host syncs.
    nnz_cache: OnceLock<usize>,
}

/// Result of [`Matrix::mxm_accum_compmask`] — the accumulated matrix,
/// the fresh-entry count (the fixpoint termination signal), and, when
/// requested, the fresh entries themselves (the next round's delta).
#[derive(Debug)]
pub struct FusedProduct {
    /// `C ∪ ((A · B) ∧ ¬C)`.
    pub acc: Matrix,
    /// `nnz((A · B) ∧ ¬C)` — zero means the fixpoint converged.
    pub fresh_nnz: usize,
    /// The fresh entries, materialised only when requested.
    pub fresh: Option<Matrix>,
}

impl Matrix {
    fn wrap(instance: &Instance, repr: Repr) -> Matrix {
        Matrix {
            instance: instance.clone(),
            repr,
            nnz_cache: OnceLock::new(),
        }
    }

    /// Wrap with a known `nnz`, priming the cache so later `nnz()` calls
    /// cost nothing.
    fn wrap_with_nnz(instance: &Instance, repr: Repr, nnz: usize) -> Matrix {
        let m = Matrix::wrap(instance, repr);
        let _ = m.nnz_cache.set(nnz);
        m
    }

    fn from_csr_host(instance: &Instance, host: CsrBool) -> Result<Matrix> {
        if instance.is_blocked() {
            return Ok(Matrix::wrap(
                instance,
                Repr::Block(BlockMatrix::from_csr(&host)),
            ));
        }
        let repr = match instance.backend() {
            Backend::Cpu => Repr::Cpu(host),
            Backend::CpuDense => Repr::Bit(BitMatrix::from_pairs(
                host.nrows(),
                host.ncols(),
                &host.to_pairs(),
            )?),
            Backend::CudaSim => {
                let dev = instance.device().expect("cuda-sim instance has a device");
                Repr::Cuda(DeviceCsr::upload(dev, &host)?)
            }
            Backend::ClSim => {
                let dev = instance.device().expect("cl-sim instance has a device");
                Repr::Cl(DeviceCoo::upload(dev, &CooBool::from(&host))?)
            }
        };
        Ok(Matrix::wrap(instance, repr))
    }

    /// An empty `nrows × ncols` matrix.
    pub fn zeros(instance: &Instance, nrows: Index, ncols: Index) -> Result<Matrix> {
        Matrix::from_csr_host(instance, CsrBool::zeros(nrows, ncols))
    }

    /// The identity matrix of order `n`.
    pub fn identity(instance: &Instance, n: Index) -> Result<Matrix> {
        Matrix::from_csr_host(instance, CsrBool::identity(n))
    }

    /// Build from coordinate pairs (the paper's "fill matrix with
    /// values"); duplicates collapse, out-of-bounds coordinates error.
    pub fn from_pairs(
        instance: &Instance,
        nrows: Index,
        ncols: Index,
        pairs: &[Pair],
    ) -> Result<Matrix> {
        Matrix::from_csr_host(instance, CsrBool::from_pairs(nrows, ncols, pairs)?)
    }

    /// Adopt a host CSR matrix.
    pub fn from_csr(instance: &Instance, host: CsrBool) -> Result<Matrix> {
        Matrix::from_csr_host(instance, host)
    }

    /// The owning instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        match &self.repr {
            Repr::Cpu(m) => m.nrows(),
            Repr::Bit(m) => m.nrows(),
            Repr::Cuda(m) => m.nrows(),
            Repr::Cl(m) => m.nrows(),
            Repr::Block(m) => m.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        match &self.repr {
            Repr::Cpu(m) => m.ncols(),
            Repr::Bit(m) => m.ncols(),
            Repr::Cuda(m) => m.ncols(),
            Repr::Cl(m) => m.ncols(),
            Repr::Block(m) => m.ncols(),
        }
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (Index, Index) {
        (self.nrows(), self.ncols())
    }

    /// Number of `true` cells. Cached on the handle after the first call
    /// (the handle is immutable, so the count can never go stale); ops
    /// that already know their output count prime the cache, so fixpoint
    /// termination checks never launch a reduction.
    pub fn nnz(&self) -> usize {
        *self.nnz_cache.get_or_init(|| match &self.repr {
            Repr::Cpu(m) => m.nnz(),
            Repr::Bit(m) => m.nnz(),
            Repr::Cuda(m) => m.nnz(),
            Repr::Cl(m) => m.nnz(),
            Repr::Block(m) => m.nnz(),
        })
    }

    /// Whether the matrix has no `true` cells.
    pub fn is_empty(&self) -> bool {
        self.nnz() == 0
    }

    /// Storage footprint in bytes under the backend's format.
    pub fn memory_bytes(&self) -> usize {
        match &self.repr {
            Repr::Cpu(m) => m.memory_bytes(),
            Repr::Bit(m) => m.memory_bytes(),
            Repr::Cuda(m) => m.memory_bytes(),
            Repr::Cl(m) => m.memory_bytes(),
            Repr::Block(m) => m.memory_bytes(),
        }
    }

    /// `(dense, csr, coo)` tile counts when this matrix uses tiled
    /// block storage; `None` on flat representations.
    pub fn block_format_census(&self) -> Option<(usize, usize, usize)> {
        match &self.repr {
            Repr::Block(m) => Some(m.format_census()),
            _ => None,
        }
    }

    /// Read all `true` coordinates, row-major (the paper's "read matrix
    /// values").
    pub fn read(&self) -> Vec<Pair> {
        match &self.repr {
            Repr::Cpu(m) => m.to_pairs(),
            Repr::Bit(m) => m.to_pairs(),
            Repr::Cuda(m) => m.download().to_pairs(),
            Repr::Cl(m) => m.download().to_pairs(),
            Repr::Block(m) => m.to_pairs(),
        }
    }

    /// Materialise as a host CSR matrix.
    pub fn to_csr(&self) -> CsrBool {
        match &self.repr {
            Repr::Cpu(m) => m.clone(),
            Repr::Bit(m) => CsrBool::from_pairs(m.nrows(), m.ncols(), &m.to_pairs())
                .expect("bit matrix pairs in bounds"),
            Repr::Cuda(m) => m.download(),
            Repr::Cl(m) => CsrBool::from(&m.download()),
            Repr::Block(m) => m.to_csr(),
        }
    }

    /// Test one cell (downloads the row on device backends; intended for
    /// small matrices and tests).
    pub fn get(&self, i: Index, j: Index) -> bool {
        match &self.repr {
            Repr::Cpu(m) => m.get(i, j),
            Repr::Bit(m) => i < m.nrows() && j < m.ncols() && m.get(i, j),
            Repr::Cuda(m) => i < m.nrows() && m.row(i).binary_search(&j).is_ok(),
            Repr::Cl(m) => m
                .rows()
                .iter()
                .zip(m.cols())
                .any(|(&r, &c)| r == i && c == j),
            Repr::Block(m) => m.get(i, j),
        }
    }

    /// Move the matrix to another instance (re-uploading as needed).
    pub fn to_instance(&self, instance: &Instance) -> Result<Matrix> {
        Matrix::from_csr_host(instance, self.to_csr())
    }

    /// Open a parent `"op"` span for a composite operation (fixpoints,
    /// powers); the leaf ops it calls nest underneath automatically.
    fn composite_span(&self, name: &'static str) -> Option<spbla_obs::SpanGuard<'static>> {
        let track = self.instance.device().map_or(0, |d| d.ordinal());
        trace_global().span(name, "op", track)
    }

    fn check_same_instance(&self, other: &Matrix) -> Result<()> {
        if !self.instance.same_as(&other.instance) {
            return Err(SpblaError::BackendMismatch);
        }
        Ok(())
    }

    fn check_mul_dims(&self, other: &Matrix) -> Result<()> {
        if self.ncols() != other.nrows() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }

    fn check_same_shape(&self, other: &Matrix, op: &'static str) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(SpblaError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }

    /// `C = A · B` over the Boolean semiring.
    ///
    /// ```
    /// use spbla_core::{Instance, Matrix};
    /// let inst = Instance::cl_sim();
    /// let a = Matrix::from_pairs(&inst, 2, 2, &[(0, 0), (0, 1)]).unwrap();
    /// let b = Matrix::from_pairs(&inst, 2, 2, &[(1, 1)]).unwrap();
    /// assert_eq!(a.mxm(&b).unwrap().read(), vec![(0, 1)]);
    /// ```
    pub fn mxm(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_instance(other)?;
        self.check_mul_dims(other)?;
        let nnz_in = (self.nnz() + other.nnz()) as u64;
        observe_op(
            &self.instance,
            "mxm",
            self.nrows() as u64,
            nnz_in,
            || {
                let repr = dispatch2!(self, other, |a, b| a.k_mxm(b))?;
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// Multiply-add `C = self + A · B` — the paper's `C += M × N` form.
    pub fn mxm_acc(&self, a: &Matrix, b: &Matrix) -> Result<Matrix> {
        let product = a.mxm(b)?;
        self.check_same_shape(&product, "mxm_acc")?;
        self.ewise_add(&product)
    }

    /// Element-wise Boolean sum `C = A + B` (set union).
    pub fn ewise_add(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_instance(other)?;
        self.check_same_shape(other, "ewise_add")?;
        let nnz_in = (self.nnz() + other.nnz()) as u64;
        observe_op(
            &self.instance,
            "ewise_add",
            self.nrows() as u64,
            nnz_in,
            || {
                let repr = dispatch2!(self, other, |a, b| a.k_ewise_add(b))?;
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// Element-wise Boolean product `C = A ∧ B` (set intersection).
    pub fn ewise_mult(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_instance(other)?;
        self.check_same_shape(other, "ewise_mult")?;
        let nnz_in = (self.nnz() + other.nnz()) as u64;
        observe_op(
            &self.instance,
            "ewise_mult",
            self.nrows() as u64,
            nnz_in,
            || {
                let repr = dispatch2!(self, other, |a, b| a.k_ewise_mult(b))?;
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// Element-wise Boolean difference `C = A ∧ ¬B` (set difference).
    /// No backend ships a dedicated and-not kernel, so this rides the
    /// complement-masked SpGEMM with an identity right operand:
    /// `(A · I) ∧ ¬B` — one launch, same metering as the fixpoint
    /// primitive it is usually paired with.
    pub fn ewise_andnot(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_shape(other, "ewise_andnot")?;
        let identity = Matrix::identity(&self.instance, self.ncols())?;
        self.mxm_compmask(&identity, other)
    }

    /// Kronecker product `K = A ⊗ B`.
    pub fn kron(&self, other: &Matrix) -> Result<Matrix> {
        self.check_same_instance(other)?;
        let nnz_in = (self.nnz() + other.nnz()) as u64;
        observe_op(
            &self.instance,
            "kron",
            self.nrows() as u64,
            nnz_in,
            || {
                let repr = match (&self.repr, &other.repr) {
                    (Repr::Cpu(a), Repr::Cpu(b)) => Repr::Cpu(a.kron(b)?),
                    (Repr::Bit(a), Repr::Bit(b)) => Repr::Bit(a.kron(b)?),
                    (Repr::Cuda(a), Repr::Cuda(b)) => Repr::Cuda(cuda_sim::kron::kron(a, b)?),
                    (Repr::Cl(a), Repr::Cl(b)) => Repr::Cl(cl_sim::structure::kron(a, b)?),
                    (Repr::Block(a), Repr::Block(b)) => Repr::Block(a.kron(b)?),
                    _ => return Err(SpblaError::BackendMismatch),
                };
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// Transpose `Mᵀ`.
    pub fn transpose(&self) -> Result<Matrix> {
        observe_op(
            &self.instance,
            "transpose",
            self.nrows() as u64,
            self.nnz() as u64,
            || {
                let repr = match &self.repr {
                    Repr::Cpu(m) => Repr::Cpu(m.transpose()),
                    Repr::Bit(m) => Repr::Bit(m.transpose()),
                    Repr::Cuda(m) => Repr::Cuda(cuda_sim::structure::transpose(m)?),
                    Repr::Cl(m) => Repr::Cl(cl_sim::structure::transpose(m)?),
                    Repr::Block(m) => Repr::Block(m.transpose()),
                };
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// Extract `M[i0 .. i0+nrows, j0 .. j0+ncols]`.
    pub fn submatrix(&self, i0: Index, j0: Index, nrows: Index, ncols: Index) -> Result<Matrix> {
        observe_op(
            &self.instance,
            "submatrix",
            nrows as u64,
            self.nnz() as u64,
            || {
                let repr = match &self.repr {
                    Repr::Cpu(m) => Repr::Cpu(m.submatrix(i0, j0, nrows, ncols)?),
                    Repr::Bit(m) => Repr::Bit(m.submatrix(i0, j0, nrows, ncols)?),
                    Repr::Cuda(m) => {
                        Repr::Cuda(cuda_sim::structure::submatrix(m, i0, j0, nrows, ncols)?)
                    }
                    Repr::Cl(m) => Repr::Cl(cl_sim::structure::submatrix(m, i0, j0, nrows, ncols)?),
                    Repr::Block(m) => Repr::Block(m.submatrix(i0, j0, nrows, ncols)?),
                };
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// `V = reduceToColumn(M)`: the Boolean or along each row.
    pub fn reduce_to_column(&self) -> Result<Vector> {
        observe_op(
            &self.instance,
            "reduce_to_column",
            self.nrows() as u64,
            self.nnz() as u64,
            || {
                let indices = dispatch1!(self, |m| m.k_reduce_to_column())?;
                Vector::from_sorted_indices(&self.instance, self.nrows(), indices)
            },
            |v| v.indices().len() as u64,
        )
    }

    /// The Boolean or along each column.
    pub fn reduce_to_row(&self) -> Result<Vector> {
        observe_op(
            &self.instance,
            "reduce_to_row",
            self.nrows() as u64,
            self.nnz() as u64,
            || {
                let indices = dispatch1!(self, |m| m.k_reduce_to_row())?;
                Vector::from_sorted_indices(&self.instance, self.ncols(), indices)
            },
            |v| v.indices().len() as u64,
        )
    }

    /// Sparse-vector × matrix product `out = v · M` (frontier push).
    pub fn vxm(&self, v: &Vector) -> Result<Vector> {
        if v.len() != self.nrows() {
            return Err(SpblaError::DimensionMismatch {
                op: "vxm",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        observe_op(
            &self.instance,
            "vxm",
            self.nrows() as u64,
            (self.nnz() + v.indices().len()) as u64,
            || {
                let out = dispatch1!(self, |m| m.k_vxm(v.indices()))?;
                Vector::from_sorted_indices(&self.instance, self.ncols(), out)
            },
            |v| v.indices().len() as u64,
        )
    }

    /// Matrix × sparse-vector product `out = M · v` (pull direction):
    /// `out[i] = ⋁_j M[i,j] ∧ v[j]`.
    pub fn mxv(&self, v: &Vector) -> Result<Vector> {
        if v.len() != self.ncols() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxv",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        observe_op(
            &self.instance,
            "mxv",
            self.nrows() as u64,
            (self.nnz() + v.indices().len()) as u64,
            || {
                let out: Vec<Index> = match &self.repr {
                    Repr::Cpu(m) => (0..m.nrows())
                        .filter(|&i| m.row(i).iter().any(|j| v.get(*j)))
                        .collect(),
                    Repr::Bit(m) => (0..m.nrows())
                        .filter(|&i| v.indices().iter().any(|&j| m.get(i, j)))
                        .collect(),
                    Repr::Cuda(m) => (0..m.nrows())
                        .filter(|&i| m.row(i).iter().any(|j| v.get(*j)))
                        .collect(),
                    Repr::Cl(m) => {
                        let offs = m.row_offsets();
                        let cols = m.cols();
                        (0..m.nrows())
                            .filter(|&i| {
                                cols[offs[i as usize]..offs[i as usize + 1]]
                                    .iter()
                                    .any(|j| v.get(*j))
                            })
                            .collect()
                    }
                    Repr::Block(m) => m.mxv_indices(v.indices()),
                };
                Vector::from_sorted_indices(&self.instance, self.nrows(), out)
            },
            |v| v.indices().len() as u64,
        )
    }

    /// Direction-optimised frontier step `out = v · M`.
    ///
    /// Sparse frontiers go **push** (row-gather SpMSpV: gather the
    /// selected rows, sort, unique — work proportional to the gathered
    /// multiset); dense frontiers go **pull** (one sweep accumulating
    /// into a `⌈n/64⌉`-word bitmap — work proportional to nnz touched,
    /// no sort). The crossover is [`Matrix::FRONTIER_PULL_DENSITY`]:
    /// PR 5's `spbla_kernel_nnz_in` histograms for `vxm` on the LUBM BFS
    /// ladder put the push path's sort ahead of the bitmap sweep until
    /// roughly one frontier vertex per 32 rows, after which gather+sort
    /// dominates. Each decision is counted in
    /// `spbla_frontier_{push,pull}_total` so the threshold stays
    /// observable in `spbla trace` and `report obs`.
    pub fn frontier_step(&self, v: &Vector) -> Result<Vector> {
        if v.len() != self.nrows() {
            return Err(SpblaError::DimensionMismatch {
                op: "frontier_step",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let frontier_nnz = v.indices().len();
        let pull = frontier_nnz * Matrix::FRONTIER_PULL_DENSITY >= self.nrows() as usize
            && frontier_nnz > 0;
        let kernel = if pull {
            "frontier_pull"
        } else {
            "frontier_push"
        };
        let counter = if pull {
            "spbla_frontier_pull_total"
        } else {
            "spbla_frontier_push_total"
        };
        let labels = [("backend", self.instance.backend().label())];
        metrics_global().counter(&labeled(counter, &labels)).inc(1);
        observe_op(
            &self.instance,
            kernel,
            self.nrows() as u64,
            (self.nnz() + frontier_nnz) as u64,
            || {
                let out = if pull {
                    let words = (self.nrows() as usize).div_ceil(64);
                    let mut frontier_words = vec![0u64; words];
                    for &i in v.indices() {
                        frontier_words[i as usize / 64] |= 1u64 << (i % 64);
                    }
                    dispatch1!(self, |m| m.k_vxm_pull(&frontier_words))?
                } else {
                    dispatch1!(self, |m| m.k_vxm(v.indices()))?
                };
                Vector::from_sorted_indices(&self.instance, self.ncols(), out)
            },
            |v| v.indices().len() as u64,
        )
    }

    /// Pull-direction denominator: the frontier goes pull once it holds
    /// at least one vertex per `FRONTIER_PULL_DENSITY` rows (density
    /// ≥ 1/32), calibrated against PR 5's `spbla_kernel_*` histograms.
    pub const FRONTIER_PULL_DENSITY: usize = 32;

    /// The transitive closure `M⁺` of a square Boolean matrix, computed
    /// semi-naïvely: each round multiplies only the *delta* (pairs found
    /// last round) against the closure, `N = (C·Δ) ∧ ¬C`, and stops when
    /// the delta is empty. Equivalent to the naive `C += C·C` loop — a
    /// shortest path's suffix half is always a last-round discovery, so
    /// doubling is preserved — but each round's SpGEMM rejects
    /// already-known pairs inside the kernel instead of recomputing the
    /// whole product.
    ///
    /// ```
    /// use spbla_core::{Instance, Matrix};
    /// let inst = Instance::cpu_dense();
    /// let path = Matrix::from_pairs(&inst, 3, 3, &[(0, 1), (1, 2)]).unwrap();
    /// let closure = path.transitive_closure().unwrap();
    /// assert_eq!(closure.read(), vec![(0, 1), (0, 2), (1, 2)]);
    /// ```
    pub fn transitive_closure(&self) -> Result<Matrix> {
        if self.nrows() != self.ncols() {
            return Err(SpblaError::DimensionMismatch {
                op: "transitive_closure",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let _span = self.composite_span("transitive_closure");
        let mut closure = Matrix::wrap(&self.instance, self.clone_repr()?);
        let mut delta = closure.duplicate()?;
        while delta.nnz() > 0 {
            let step = closure.mxm_accum_compmask(&closure, &delta, true)?;
            if step.fresh_nnz == 0 {
                break;
            }
            closure = step.acc;
            delta = step.fresh.expect("fresh requested");
        }
        Ok(closure)
    }

    fn clone_repr(&self) -> Result<Repr> {
        Ok(match &self.repr {
            Repr::Cpu(m) => Repr::Cpu(m.clone()),
            Repr::Bit(m) => Repr::Bit(m.clone()),
            Repr::Cuda(m) => {
                let dev = m.device().clone();
                Repr::Cuda(DeviceCsr::upload(&dev, &m.download())?)
            }
            Repr::Cl(m) => {
                let dev = m.device().clone();
                Repr::Cl(DeviceCoo::upload(&dev, &m.download())?)
            }
            Repr::Block(m) => Repr::Block(m.clone()),
        })
    }

    /// Deep copy (duplicate the paper's "matrix duplicate" utility).
    pub fn duplicate(&self) -> Result<Matrix> {
        Ok(Matrix::wrap(&self.instance, self.clone_repr()?))
    }

    /// `Aᵏ` by exponentiation by squaring (`A⁰ = I`). Square matrices
    /// only — the k-hop reachability building block.
    pub fn power(&self, k: u32) -> Result<Matrix> {
        if self.nrows() != self.ncols() {
            return Err(SpblaError::DimensionMismatch {
                op: "power",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let _span = self.composite_span("power");
        let mut result = Matrix::identity(&self.instance, self.nrows())?;
        let mut base = self.duplicate()?;
        let mut e = k;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mxm(&base)?;
            }
            e >>= 1;
            if e > 0 {
                base = base.mxm(&base)?;
            }
        }
        Ok(result)
    }

    /// Masked product `C = (A · B) ∧ M` — the GraphBLAS-style masked
    /// `mxm` applications use to restrict results to a pattern (e.g.
    /// triangle counting masks by the adjacency itself).
    ///
    /// Every backend applies the mask *inside* its SpGEMM kernel —
    /// candidates outside the mask row are rejected before they reach
    /// the accumulator, so no full product is ever materialised.
    pub fn mxm_masked(&self, other: &Matrix, mask: &Matrix) -> Result<Matrix> {
        self.check_masked_args(other, mask)?;
        let nnz_in = (self.nnz() + other.nnz() + mask.nnz()) as u64;
        observe_op(
            &self.instance,
            "mxm_masked",
            self.nrows() as u64,
            nnz_in,
            || {
                let repr = dispatch3!(self, other, mask, |a, b, m| a.k_mxm_masked(b, m))?;
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// Complemented-mask product `C = (A · B) ∧ ¬M` — only entries of the
    /// product *not* already present in `M`. This is the semi-naïve
    /// fixpoint primitive: with `M` the frontier accumulated so far, the
    /// result is exactly the new discoveries, and the kernel rejects
    /// already-known candidates before they cost accumulator space.
    pub fn mxm_compmask(&self, other: &Matrix, mask: &Matrix) -> Result<Matrix> {
        self.check_masked_args(other, mask)?;
        let nnz_in = (self.nnz() + other.nnz() + mask.nnz()) as u64;
        observe_op(
            &self.instance,
            "mxm_compmask",
            self.nrows() as u64,
            nnz_in,
            || {
                let repr = dispatch3!(self, other, mask, |a, b, m| a.k_mxm_compmask(b, m))?;
                Ok(Matrix::wrap(&self.instance, repr))
            },
            |m| m.nnz() as u64,
        )
    }

    /// Fused semi-naïve step with `self` the accumulator:
    /// `fresh = (a · b) ∧ ¬self`, `acc = self ∪ fresh`, plus the fresh
    /// count — one kernel chain per backend. The intermediate product is
    /// never materialised as a standalone matrix (candidates are
    /// rejected against `self` inside the SpGEMM), the union skips the
    /// duplicate-detection work of a general `ewise_add` (the operands
    /// are disjoint by construction), and the returned count makes the
    /// fixpoint termination check free — replacing the three-op
    /// `mxm_compmask → ewise_add → nnz` composition. Both result
    /// matrices carry primed `nnz` caches.
    ///
    /// Set `want_fresh` when the caller needs the delta for the next
    /// round; with it `false` the fresh matrix is dropped inside the
    /// kernel wrapper.
    pub fn mxm_accum_compmask(
        &self,
        a: &Matrix,
        b: &Matrix,
        want_fresh: bool,
    ) -> Result<FusedProduct> {
        a.check_masked_args(b, self)?;
        let self_nnz = self.nnz();
        let nnz_in = (self_nnz + a.nnz() + b.nnz()) as u64;
        observe_op(
            &self.instance,
            "mxm_accum_compmask",
            self.nrows() as u64,
            nnz_in,
            || {
                let (acc, fresh_nnz, fresh) = match (&self.repr, &a.repr, &b.repr) {
                    (Repr::Cpu(c), Repr::Cpu(ra), Repr::Cpu(rb)) => {
                        let r = c.k_mxm_accum_compmask(ra, rb, want_fresh)?;
                        (Repr::Cpu(r.acc), r.fresh_nnz, r.fresh.map(Repr::Cpu))
                    }
                    (Repr::Bit(c), Repr::Bit(ra), Repr::Bit(rb)) => {
                        let r = c.k_mxm_accum_compmask(ra, rb, want_fresh)?;
                        (Repr::Bit(r.acc), r.fresh_nnz, r.fresh.map(Repr::Bit))
                    }
                    (Repr::Cuda(c), Repr::Cuda(ra), Repr::Cuda(rb)) => {
                        let r = c.k_mxm_accum_compmask(ra, rb, want_fresh)?;
                        (Repr::Cuda(r.acc), r.fresh_nnz, r.fresh.map(Repr::Cuda))
                    }
                    (Repr::Cl(c), Repr::Cl(ra), Repr::Cl(rb)) => {
                        let r = c.k_mxm_accum_compmask(ra, rb, want_fresh)?;
                        (Repr::Cl(r.acc), r.fresh_nnz, r.fresh.map(Repr::Cl))
                    }
                    (Repr::Block(c), Repr::Block(ra), Repr::Block(rb)) => {
                        let r = c.k_mxm_accum_compmask(ra, rb, want_fresh)?;
                        (Repr::Block(r.acc), r.fresh_nnz, r.fresh.map(Repr::Block))
                    }
                    _ => return Err(SpblaError::BackendMismatch),
                };
                Ok(FusedProduct {
                    acc: Matrix::wrap_with_nnz(&self.instance, acc, self_nnz + fresh_nnz),
                    fresh_nnz,
                    fresh: fresh.map(|f| Matrix::wrap_with_nnz(&self.instance, f, fresh_nnz)),
                })
            },
            |r| r.fresh_nnz as u64,
        )
    }

    fn check_masked_args(&self, other: &Matrix, mask: &Matrix) -> Result<()> {
        self.check_same_instance(other)?;
        self.check_same_instance(mask)?;
        self.check_mul_dims(other)?;
        if (self.nrows(), other.ncols()) != mask.shape() {
            return Err(SpblaError::DimensionMismatch {
                op: "mxm_masked",
                lhs: (self.nrows(), other.ncols()),
                rhs: mask.shape(),
            });
        }
        Ok(())
    }

    /// Pairs reachable in 1 ..= k steps: `A + A² + … + Aᵏ`.
    pub fn reachable_within(&self, k: u32) -> Result<Matrix> {
        if self.nrows() != self.ncols() {
            return Err(SpblaError::DimensionMismatch {
                op: "reachable_within",
                lhs: self.shape(),
                rhs: self.shape(),
            });
        }
        let _span = self.composite_span("reachable_within");
        let mut acc = self.duplicate()?;
        let mut walk = self.duplicate()?;
        for _ in 1..k {
            walk = walk.mxm(self)?;
            let next = acc.ewise_add(&walk)?;
            if next.nnz() == acc.nnz() {
                return Ok(next); // saturated early
            }
            acc = next;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instances() -> Vec<Instance> {
        vec![
            Instance::cpu(),
            Instance::cpu_dense(),
            Instance::cuda_sim(),
            Instance::cl_sim(),
        ]
    }

    #[test]
    fn roundtrip_on_all_backends() {
        for inst in instances() {
            let m = Matrix::from_pairs(&inst, 3, 4, &[(0, 1), (2, 3)]).unwrap();
            assert_eq!(m.shape(), (3, 4));
            assert_eq!(m.nnz(), 2);
            assert_eq!(m.read(), vec![(0, 1), (2, 3)]);
            assert!(m.get(0, 1) && !m.get(1, 1));
        }
    }

    #[test]
    fn mxm_identical_across_backends() {
        let a_pairs = [(0u32, 1u32), (1, 2), (2, 0), (2, 2)];
        let b_pairs = [(0u32, 0u32), (1, 2), (2, 1)];
        let mut results = Vec::new();
        for inst in instances() {
            let a = Matrix::from_pairs(&inst, 3, 3, &a_pairs).unwrap();
            let b = Matrix::from_pairs(&inst, 3, 3, &b_pairs).unwrap();
            results.push(a.mxm(&b).unwrap().read());
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn ewise_andnot_is_set_difference() {
        for inst in instances() {
            let a = Matrix::from_pairs(&inst, 3, 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
            let b = Matrix::from_pairs(&inst, 3, 4, &[(1, 2), (2, 0)]).unwrap();
            let c = a.ewise_andnot(&b).unwrap();
            assert_eq!(c.read(), vec![(0, 1), (2, 3)]);
            // Subtracting a disjoint set is the identity.
            let d = c.ewise_andnot(&b).unwrap();
            assert_eq!(d.read(), c.read());
        }
        // Shape mismatch is rejected before any kernel runs.
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 2, 2, &[(0, 0)]).unwrap();
        let b = Matrix::from_pairs(&inst, 2, 3, &[(0, 0)]).unwrap();
        assert!(matches!(
            a.ewise_andnot(&b),
            Err(SpblaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mxm_acc_accumulates() {
        for inst in instances() {
            let c = Matrix::from_pairs(&inst, 2, 2, &[(1, 1)]).unwrap();
            let a = Matrix::from_pairs(&inst, 2, 2, &[(0, 0)]).unwrap();
            let b = Matrix::from_pairs(&inst, 2, 2, &[(0, 1)]).unwrap();
            let r = c.mxm_acc(&a, &b).unwrap();
            assert_eq!(r.read(), vec![(0, 1), (1, 1)]);
        }
    }

    #[test]
    fn ops_record_kernel_histograms() {
        for inst in instances() {
            let labels = [("backend", inst.backend().label()), ("kernel", "mxm")];
            let h = metrics_global().histogram(&labeled("spbla_kernel_nnz_out", &labels));
            let before = h.count();
            let a = Matrix::from_pairs(&inst, 2, 2, &[(0, 0), (0, 1)]).unwrap();
            let b = Matrix::from_pairs(&inst, 2, 2, &[(1, 1)]).unwrap();
            assert_eq!(a.mxm(&b).unwrap().nnz(), 1);
            // Other tests may run mxm concurrently; ours adds at least one.
            assert!(h.count() > before);
        }
    }

    #[test]
    fn cross_instance_rejected() {
        let a = Matrix::from_pairs(&Instance::cpu(), 2, 2, &[(0, 0)]).unwrap();
        let b = Matrix::from_pairs(&Instance::cuda_sim(), 2, 2, &[(0, 0)]).unwrap();
        assert!(matches!(a.mxm(&b), Err(SpblaError::BackendMismatch)));
        // Even same backend, different instance.
        let c = Matrix::from_pairs(&Instance::cpu(), 2, 2, &[(0, 0)]).unwrap();
        assert!(matches!(a.ewise_add(&c), Err(SpblaError::BackendMismatch)));
    }

    #[test]
    fn transitive_closure_of_path() {
        for inst in instances() {
            let p = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
            let c = p.transitive_closure().unwrap();
            let expect = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
            assert_eq!(c.read(), expect);
        }
    }

    #[test]
    fn reduce_and_vxm() {
        for inst in instances() {
            let m = Matrix::from_pairs(&inst, 3, 3, &[(0, 1), (2, 0)]).unwrap();
            assert_eq!(m.reduce_to_column().unwrap().indices(), &[0, 2]);
            assert_eq!(m.reduce_to_row().unwrap().indices(), &[0, 1]);
            let v = Vector::from_indices(&inst, 3, &[0]).unwrap();
            assert_eq!(m.vxm(&v).unwrap().indices(), &[1]);
        }
    }

    #[test]
    fn mxv_is_vxm_of_transpose() {
        for inst in instances() {
            let m = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (1, 2), (3, 1)]).unwrap();
            let v = Vector::from_indices(&inst, 4, &[1, 2]).unwrap();
            let pull = m.mxv(&v).unwrap();
            let push = m.transpose().unwrap().vxm(&v).unwrap();
            assert_eq!(pull.indices(), push.indices(), "{:?}", inst.backend());
            assert_eq!(pull.indices(), &[0, 1, 3]);
        }
    }

    #[test]
    fn power_and_reachability() {
        for inst in instances() {
            // Path 0→1→2→3.
            let p = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
            assert_eq!(
                p.power(0).unwrap().read(),
                Matrix::identity(&inst, 4).unwrap().read()
            );
            assert_eq!(p.power(2).unwrap().read(), vec![(0, 2), (1, 3)]);
            assert_eq!(p.power(3).unwrap().read(), vec![(0, 3)]);
            assert_eq!(p.power(4).unwrap().nnz(), 0);
            let within2 = p.reachable_within(2).unwrap();
            assert_eq!(within2.read(), vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
            // Saturation: k beyond the diameter equals the closure.
            assert_eq!(
                p.reachable_within(10).unwrap().read(),
                p.transitive_closure().unwrap().read()
            );
        }
    }

    #[test]
    fn masked_product() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 3, 3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mask = Matrix::from_pairs(&inst, 3, 3, &[(0, 2)]).unwrap();
        // A² = {(0,2)}; mask keeps it. A different mask drops it.
        assert_eq!(a.mxm_masked(&a, &mask).unwrap().read(), vec![(0, 2)]);
        let empty_mask = Matrix::zeros(&inst, 3, 3).unwrap();
        assert_eq!(a.mxm_masked(&a, &empty_mask).unwrap().nnz(), 0);
    }

    #[test]
    fn masked_and_compmask_native_on_all_backends() {
        let pairs_a: Vec<(u32, u32)> = (0..30).map(|i| (i % 8, (i * 3 + 1) % 8)).collect();
        let pairs_b: Vec<(u32, u32)> = (0..30).map(|i| (i % 8, (i * 5 + 2) % 8)).collect();
        let pairs_m: Vec<(u32, u32)> = (0..20).map(|i| (i % 8, (i * 7 + 3) % 8)).collect();
        let cpu = Instance::cpu();
        let ca = Matrix::from_pairs(&cpu, 8, 8, &pairs_a).unwrap();
        let cb = Matrix::from_pairs(&cpu, 8, 8, &pairs_b).unwrap();
        let product = ca.mxm(&cb).unwrap().read();
        let in_mask: std::collections::HashSet<(u32, u32)> = pairs_m.iter().copied().collect();
        let expect_kept: Vec<(u32, u32)> = product
            .iter()
            .copied()
            .filter(|p| in_mask.contains(p))
            .collect();
        let expect_new: Vec<(u32, u32)> = product
            .iter()
            .copied()
            .filter(|p| !in_mask.contains(p))
            .collect();
        for inst in instances() {
            let a = Matrix::from_pairs(&inst, 8, 8, &pairs_a).unwrap();
            let b = Matrix::from_pairs(&inst, 8, 8, &pairs_b).unwrap();
            let m = Matrix::from_pairs(&inst, 8, 8, &pairs_m).unwrap();
            assert_eq!(a.mxm_masked(&b, &m).unwrap().read(), expect_kept);
            assert_eq!(a.mxm_compmask(&b, &m).unwrap().read(), expect_new);
            // Empty mask: masked yields nothing, compmask the full product.
            let zero = Matrix::zeros(&inst, 8, 8).unwrap();
            assert_eq!(a.mxm_masked(&b, &zero).unwrap().nnz(), 0);
            assert_eq!(a.mxm_compmask(&b, &zero).unwrap().read(), product);
        }
    }

    #[test]
    fn compmask_rejects_bad_shapes() {
        let inst = Instance::cpu();
        let a = Matrix::from_pairs(&inst, 3, 3, &[(0, 1)]).unwrap();
        let bad_mask = Matrix::zeros(&inst, 3, 4).unwrap();
        assert!(a.mxm_compmask(&a, &bad_mask).is_err());
    }

    #[test]
    fn structural_ops_match_cpu() {
        let pairs = [(0u32, 1u32), (1, 3), (2, 0), (2, 2), (3, 3)];
        let cpu_inst = Instance::cpu();
        let cpu = Matrix::from_pairs(&cpu_inst, 4, 4, &pairs).unwrap();
        for inst in [Instance::cuda_sim(), Instance::cl_sim()] {
            let m = Matrix::from_pairs(&inst, 4, 4, &pairs).unwrap();
            assert_eq!(
                m.transpose().unwrap().read(),
                cpu.transpose().unwrap().read()
            );
            assert_eq!(
                m.submatrix(1, 1, 3, 3).unwrap().read(),
                cpu.submatrix(1, 1, 3, 3).unwrap().read()
            );
            let other = Matrix::from_pairs(&inst, 4, 4, &[(0, 1), (3, 0)]).unwrap();
            let cpu_other = Matrix::from_pairs(&cpu_inst, 4, 4, &[(0, 1), (3, 0)]).unwrap();
            assert_eq!(
                m.ewise_mult(&other).unwrap().read(),
                cpu.ewise_mult(&cpu_other).unwrap().read()
            );
            let k = m.kron(&other).unwrap();
            assert_eq!(k.read(), cpu.kron(&cpu_other).unwrap().read());
        }
    }
}
