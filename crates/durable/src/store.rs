//! The durability façade: a [`DurableLog`] couples the segmented WAL
//! with periodic checkpoints, and [`recover`] rebuilds the graph from
//! the newest readable checkpoint plus the log tail.
//!
//! ## Recovery invariants
//!
//! 1. Every applied batch is on disk (appended and fsynced) before the
//!    caller learns the apply succeeded, so recovery never loses an
//!    acknowledged version — across process *and* machine crashes.
//! 2. Recovery = newest readable checkpoint + replay of WAL records
//!    with `version > checkpoint.version`. With compaction disabled
//!    the log's committed prefix is never discarded, so *any*
//!    surviving checkpoint is a valid starting point — a damaged
//!    newest checkpoint falls back to an older one and replays a
//!    longer tail. With [`DurabilityConfig::compact_on_checkpoint`]
//!    (the default), segments wholly covered by a *successfully
//!    written* checkpoint are deleted right after it lands, so
//!    fallback is bounded by the compaction horizon: recovery from a
//!    checkpoint older than the horizon finds the version gap between
//!    its checkpoint and the log's first surviving record and fails
//!    with a typed [`DurableError::Corrupt`] — never a silently
//!    shortened history.
//! 3. A torn record at the very tail of the last segment is the
//!    expected crash artifact: replay ends cleanly there, and
//!    re-opening the log trims the tear back to the last intact record
//!    boundary so post-restart appends stay replayable. Every other
//!    malformation surfaces as [`DurableError::Corrupt`] before any
//!    state is handed to the caller.

use std::path::{Path, PathBuf};

use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;
use spbla_obs::metrics_global;
use spbla_stream::UpdateBatch;

use crate::checkpoint::{list_checkpoints, read_checkpoint, write_checkpoint};
use crate::error::{DurableError, Result};
use crate::wal::{replay, Wal};

/// Tuning knobs for a [`DurableLog`].
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Segment rotation threshold in bytes.
    pub segment_bytes: usize,
    /// Write a checkpoint every this many appended batches (0 disables
    /// automatic checkpoints; [`DurableLog::checkpoint_now`] still
    /// works).
    pub checkpoint_every: u64,
    /// Garbage-collect WAL segments wholly covered by a checkpoint as
    /// soon as that checkpoint is durably written (see
    /// [`crate::wal::compact`]). Off keeps the full log and preserves
    /// unbounded checkpoint fallback at the cost of unbounded disk.
    pub compact_on_checkpoint: bool,
    /// Batch fsyncs across appends (group commit). Off, every append
    /// fsyncs before returning and is immediately acknowledged. On, an
    /// append is written but only *acknowledged* — reported by
    /// [`DurableLog::acked_version`] — once a covering fsync lands:
    /// every [`DurabilityConfig::flush_every`] appends, at segment
    /// rotation, before a checkpoint, or on an explicit
    /// [`DurableLog::flush`]. A crash loses at most the unacknowledged
    /// tail; the acknowledged prefix holds under the same per-byte
    /// crash matrix as the always-fsync path.
    pub group_commit: bool,
    /// Appends per fsync when [`DurabilityConfig::group_commit`] is on
    /// (clamped to at least 1); ignored when it is off.
    pub flush_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            segment_bytes: 64 * 1024,
            checkpoint_every: 8,
            compact_on_checkpoint: true,
            group_commit: false,
            flush_every: 8,
        }
    }
}

/// Append-side handle over one graph's durability directory.
pub struct DurableLog {
    dir: PathBuf,
    config: DurabilityConfig,
    wal: Wal,
    since_checkpoint: u64,
    since_flush: u64,
    head_version: u64,
    acked_version: u64,
}

impl DurableLog {
    /// Initialize a durability directory for `graph`: writes the base
    /// checkpoint at `version` and opens a fresh log. Also the path for
    /// re-opening an existing directory — the base checkpoint is only
    /// written when none exists yet.
    pub fn open(
        dir: &Path,
        config: DurabilityConfig,
        graph: &LabeledGraph,
        version: u64,
        table: &SymbolTable,
    ) -> Result<DurableLog> {
        let wal = Wal::open(dir, config.segment_bytes)?;
        if list_checkpoints(dir)?.is_empty() {
            write_checkpoint(dir, version, graph, table)?;
        }
        Ok(DurableLog {
            dir: dir.to_path_buf(),
            config,
            wal,
            since_checkpoint: 0,
            since_flush: 0,
            head_version: version,
            acked_version: version,
        })
    }

    /// Directory this log persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Record the batch that produced `version`; `graph_after` is the
    /// post-apply state, used when this append crosses the checkpoint
    /// interval. Without group commit the record is fsynced — durable,
    /// acknowledged — before this returns. With
    /// [`DurabilityConfig::group_commit`] the record is written but
    /// only acknowledged once its covering fsync lands; track the
    /// acknowledged frontier via [`DurableLog::acked_version`], or
    /// force it with [`DurableLog::flush`]. A caller that must not ack
    /// its own client before durability therefore waits for
    /// `acked_version() >= version` (or flushes).
    pub fn append(
        &mut self,
        version: u64,
        batch: &UpdateBatch,
        graph_after: &LabeledGraph,
        table: &SymbolTable,
    ) -> Result<()> {
        if self.config.group_commit {
            self.wal.append_nosync(version, batch, table)?;
            self.head_version = version;
            self.since_flush += 1;
            if self.since_flush >= self.config.flush_every.max(1) {
                self.flush()?;
            }
        } else {
            self.wal.append(version, batch, table)?;
            self.head_version = version;
            self.acked_version = version;
            self.since_flush = 0;
        }
        self.since_checkpoint += 1;
        if self.config.checkpoint_every > 0 && self.since_checkpoint >= self.config.checkpoint_every
        {
            self.checkpoint_now(version, graph_after, table)?;
        }
        Ok(())
    }

    /// Make every appended record durable now and advance the
    /// acknowledged frontier to the head. Returns the new
    /// [`DurableLog::acked_version`].
    pub fn flush(&mut self) -> Result<u64> {
        self.wal.flush()?;
        self.acked_version = self.head_version;
        self.since_flush = 0;
        Ok(self.acked_version)
    }

    /// Highest version whose record is covered by an fsync — the
    /// prefix recovery is guaranteed to reproduce. Equal to the last
    /// appended version except inside an open group-commit window.
    /// Tracks appends through this handle (re-opening a directory
    /// starts from the base version passed to [`DurableLog::open`]).
    pub fn acked_version(&self) -> u64 {
        self.acked_version
    }

    /// Appended-but-unacknowledged batches in the group-commit window.
    pub fn unacked(&self) -> u64 {
        self.head_version - self.acked_version
    }

    /// Record-covering fsyncs this log's WAL has issued since open —
    /// the group-commit ablation's cost currency.
    pub fn fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// Force a checkpoint of `graph` at `version`. Pending group-commit
    /// records are flushed first (the checkpoint must never be *ahead*
    /// of the durable log it compacts against). When compaction is
    /// enabled, log segments wholly covered by the new checkpoint are
    /// deleted — only after the checkpoint write itself succeeded, so
    /// a failed checkpoint never costs log records.
    pub fn checkpoint_now(
        &mut self,
        version: u64,
        graph: &LabeledGraph,
        table: &SymbolTable,
    ) -> Result<()> {
        self.flush()?;
        write_checkpoint(&self.dir, version, graph, table)?;
        if self.config.compact_on_checkpoint {
            crate::wal::compact(&self.dir, version)?;
        }
        self.since_checkpoint = 0;
        Ok(())
    }
}

/// What [`recover`] reconstructed.
#[derive(Debug)]
pub struct Recovered {
    /// Graph state at `checkpoint_version` (before tail replay).
    pub graph: LabeledGraph,
    /// Version of the checkpoint recovery started from.
    pub checkpoint_version: u64,
    /// Head version after replaying the tail.
    pub head_version: u64,
    /// Tail batches, `(version, batch)` in order; applying them to
    /// `graph` reconstructs every version up to `head_version`.
    pub tail: Vec<(u64, UpdateBatch)>,
    /// Whether the log ended in a torn record (crash artifact).
    pub torn_tail: bool,
    /// Checkpoints that failed to read and were skipped in favor of an
    /// older one.
    pub skipped_checkpoints: usize,
}

/// Rebuild graph state from `dir`: newest readable checkpoint plus the
/// WAL tail past its version. Label names are interned into `table`.
pub fn recover(dir: &Path, table: &mut SymbolTable) -> Result<Recovered> {
    let checkpoints = list_checkpoints(dir)?;
    if checkpoints.is_empty() {
        return Err(DurableError::NoCheckpoint {
            dir: dir.display().to_string(),
        });
    }
    let mut skipped = 0usize;
    let mut chosen = None;
    let mut last_err = None;
    for (_, path) in &checkpoints {
        match read_checkpoint(path) {
            Ok(ckpt) => {
                chosen = Some(ckpt);
                break;
            }
            Err(e) => {
                skipped += 1;
                last_err = Some(e);
            }
        }
    }
    let ckpt = match chosen {
        Some(c) => c,
        None => return Err(last_err.expect("at least one checkpoint was tried")),
    };
    let graph = ckpt.to_graph(table);
    let replayed = replay(dir, ckpt.version)?;
    // Versions are contiguous, so the first record past the checkpoint
    // must be exactly checkpoint + 1. A later first record means the
    // tail between them was compacted away against a newer checkpoint
    // this recovery could not read — starting here would silently skip
    // versions, so it is corruption, not a fallback.
    if let Some(first) = replayed.records.first() {
        if first.version > ckpt.version + 1 {
            return Err(DurableError::Corrupt {
                path: dir.display().to_string(),
                offset: 0,
                reason: format!(
                    "log begins at version {} but the newest readable checkpoint is {}: \
                     the tail in between was compacted against a newer checkpoint",
                    first.version, ckpt.version
                ),
            });
        }
    }
    let mut head = ckpt.version;
    let mut tail = Vec::with_capacity(replayed.records.len());
    for rec in &replayed.records {
        tail.push((rec.version, rec.to_batch(table)));
        head = rec.version;
    }
    let m = metrics_global();
    m.counter("spbla_wal_recoveries_total").inc(1);
    m.counter("spbla_wal_replayed_records_total")
        .inc(tail.len() as u64);
    if replayed.torn_tail {
        m.counter("spbla_wal_torn_tails_total").inc(1);
    }
    Ok(Recovered {
        graph,
        checkpoint_version: ckpt.version,
        head_version: head,
        tail,
        torn_tail: replayed.torn_tail,
        skipped_checkpoints: skipped,
    })
}

/// Summary of a completed engine recovery.
#[derive(Debug)]
pub struct EngineRecovery {
    /// Version of the checkpoint the graph was restored from.
    pub checkpoint_version: u64,
    /// Version after tail replay — the engine's live version.
    pub head_version: u64,
    /// Tail batches replayed through the engine's update path.
    pub replayed: usize,
    /// Whether the log ended in a torn record.
    pub torn_tail: bool,
}

/// Restore graph `name` into `engine` from the durability directory:
/// register the checkpointed state at its version, then replay the WAL
/// tail through the engine's normal update path, so the recovered
/// process resumes the exact pre-crash version sequence.
pub fn recover_into_engine(
    engine: &spbla_engine::Engine,
    name: &str,
    dir: &Path,
) -> Result<EngineRecovery> {
    let rec = engine.with_symbols(|table| recover(dir, table))?;
    engine.add_graph_at_version(name, rec.graph, rec.checkpoint_version);
    let replayed = rec.tail.len();
    for (version, batch) in rec.tail {
        let produced = engine.apply_batch(name, batch)?;
        if produced != version {
            return Err(DurableError::Corrupt {
                path: dir.display().to_string(),
                offset: 0,
                reason: format!("replay produced version {produced}, log recorded {version}"),
            });
        }
    }
    Ok(EngineRecovery {
        checkpoint_version: rec.checkpoint_version,
        head_version: rec.head_version,
        replayed,
        torn_tail: rec.torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spbla-durlog-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn edges_sorted(g: &LabeledGraph, table: &SymbolTable, name: &str) -> Vec<(u32, u32)> {
        let mut v = table
            .get(name)
            .map(|s| g.edges_of(s).to_vec())
            .unwrap_or_default();
        v.sort_unstable();
        v
    }

    #[test]
    fn recover_replays_checkpoint_plus_tail() {
        let dir = tmpdir("tail");
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let mut graph = LabeledGraph::from_triples(16, [(0, a, 1)]);
        let cfg = DurabilityConfig {
            segment_bytes: 256,
            checkpoint_every: 3, // checkpoint mid-history
            compact_on_checkpoint: true,
            ..DurabilityConfig::default()
        };
        let mut log = DurableLog::open(&dir, cfg, &graph, 0, &table).unwrap();
        for k in 0..5u32 {
            let mut batch = UpdateBatch::new();
            batch.insert(k + 1, a, k + 2);
            batch.apply_to(&mut graph);
            log.append(u64::from(k) + 1, &batch, &graph, &table)
                .unwrap();
        }
        let mut fresh = SymbolTable::new();
        let rec = recover(&dir, &mut fresh).unwrap();
        assert_eq!(rec.checkpoint_version, 3);
        assert_eq!(rec.head_version, 5);
        assert_eq!(rec.tail.len(), 2);
        assert!(!rec.torn_tail);
        assert_eq!(rec.skipped_checkpoints, 0);
        let mut rebuilt = rec.graph;
        for (_, batch) in &rec.tail {
            batch.apply_to(&mut rebuilt);
        }
        assert_eq!(
            edges_sorted(&rebuilt, &fresh, "a"),
            edges_sorted(&graph, &table, "a")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_older() {
        let dir = tmpdir("fallback");
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let mut graph = LabeledGraph::from_triples(8, [(0, a, 1)]);
        // Compaction off: this test is about the unbounded-fallback
        // guarantee the full log provides.
        let cfg = DurabilityConfig {
            segment_bytes: 1 << 20,
            checkpoint_every: 2,
            compact_on_checkpoint: false,
            ..DurabilityConfig::default()
        };
        let mut log = DurableLog::open(&dir, cfg, &graph, 0, &table).unwrap();
        for k in 0..4u32 {
            let mut batch = UpdateBatch::new();
            batch.insert(k + 1, a, (k + 2) % 8);
            batch.apply_to(&mut graph);
            log.append(u64::from(k) + 1, &batch, &graph, &table)
                .unwrap();
        }
        // Corrupt the newest checkpoint (version 4): recovery starts
        // from version 2 and replays a longer tail instead.
        let (newest, path) = list_checkpoints(&dir).unwrap().remove(0);
        assert_eq!(newest, 4);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let mut fresh = SymbolTable::new();
        let rec = recover(&dir, &mut fresh).unwrap();
        assert_eq!(rec.skipped_checkpoints, 1);
        assert_eq!(rec.checkpoint_version, 2);
        assert_eq!(rec.head_version, 4);
        let mut rebuilt = rec.graph;
        for (_, batch) in &rec.tail {
            batch.apply_to(&mut rebuilt);
        }
        assert_eq!(
            edges_sorted(&rebuilt, &fresh, "a"),
            edges_sorted(&graph, &table, "a")
        );
        // Destroying every checkpoint is a typed error, not a panic.
        for (_, path) in list_checkpoints(&dir).unwrap() {
            fs::write(&path, b"garbage").unwrap();
        }
        assert!(matches!(
            recover(&dir, &mut SymbolTable::new()),
            Err(DurableError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_fsyncs_and_tracks_the_acked_frontier() {
        let dir = tmpdir("group");
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let mut graph = LabeledGraph::from_triples(16, [(0, a, 1)]);
        let cfg = DurabilityConfig {
            segment_bytes: 1 << 20,
            checkpoint_every: 0, // checkpoints fsync too; isolate the WAL
            group_commit: true,
            flush_every: 4,
            ..DurabilityConfig::default()
        };
        let mut log = DurableLog::open(&dir, cfg, &graph, 0, &table).unwrap();
        for k in 0..10u32 {
            let mut batch = UpdateBatch::new();
            batch.insert(k + 1, a, (k + 2) % 16);
            batch.apply_to(&mut graph);
            log.append(u64::from(k) + 1, &batch, &graph, &table)
                .unwrap();
            // The acked frontier only advances on covering fsyncs.
            let v = u64::from(k) + 1;
            assert_eq!(log.acked_version(), v / 4 * 4);
            assert_eq!(log.unacked(), v - v / 4 * 4);
        }
        // 10 appends at flush_every=4 → exactly 2 fsyncs so far.
        assert_eq!(log.fsyncs(), 2);
        // An explicit flush drains the window and acks the head.
        assert_eq!(log.flush().unwrap(), 10);
        assert_eq!(log.unacked(), 0);
        assert_eq!(log.fsyncs(), 3);
        // Everything acked is recoverable.
        let mut fresh = SymbolTable::new();
        let rec = recover(&dir, &mut fresh).unwrap();
        assert_eq!(rec.head_version, 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn always_fsync_path_syncs_every_append() {
        let dir = tmpdir("nogroup");
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let mut graph = LabeledGraph::from_triples(8, [(0, a, 1)]);
        let cfg = DurabilityConfig {
            segment_bytes: 1 << 20,
            checkpoint_every: 0,
            group_commit: false,
            ..DurabilityConfig::default()
        };
        let mut log = DurableLog::open(&dir, cfg, &graph, 0, &table).unwrap();
        for k in 0..5u32 {
            let mut batch = UpdateBatch::new();
            batch.insert(k + 1, a, (k + 2) % 8);
            batch.apply_to(&mut graph);
            log.append(u64::from(k) + 1, &batch, &graph, &table)
                .unwrap();
            assert_eq!(log.acked_version(), u64::from(k) + 1);
            assert_eq!(log.unacked(), 0);
        }
        assert_eq!(log.fsyncs(), 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
