//! Replica sets: R copies of a versioned graph, each on its own
//! [`DeviceGrid`], behind one write path.
//!
//! ## Routing rule
//!
//! A versioned read names the minimum version it was pinned at; it may
//! be served by *any* replica whose applied version is ≥ that pin.
//! [`ReplicaSet::route`] walks replicas round-robin from a rotating
//! cursor and takes the first that qualifies; when the cursor's first
//! candidate is lagging, the skip is counted in
//! `spbla_replica_lag_fallbacks_total`. Replica 0 is the primary and is
//! always synced first, so the walk always terminates for any pin the
//! writer has acknowledged.
//!
//! ## Write fan-out
//!
//! [`ReplicaSet::apply`] appends the batch to an in-set log and replays
//! it on every replica. Each follower delivery is metered through the
//! primary grid's [`Comm`] layer (`send_bytes`) at the batch's wire
//! size, so replication traffic shows up in the same per-device d2d
//! accounting as every other cross-device transfer.
//!
//! [`Comm`]: spbla_multidev::Comm

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use spbla_core::{CsrBool, Pair};
use spbla_graph::closure::closure_delta_dist;
use spbla_graph::LabeledGraph;
use spbla_multidev::DeviceGrid;
use spbla_obs::{labeled, metrics_global};
use spbla_stream::{checksum_pairs, UpdateBatch, VersionedGraph};

use crate::error::Result;

/// Wire-size model for one fanned-out update record: op tag + label
/// index + two endpoints, plus a fixed record header — matching the
/// WAL's record encoding, which is what a real follower link would
/// carry.
const FANOUT_HEADER_BYTES: u64 = 16;
const FANOUT_BYTES_PER_OP: u64 = 13;

struct Replica {
    store: VersionedGraph,
    /// Number of log entries this replica has applied. A mutex, not an
    /// atomic: holding it across the whole catch-up loop serializes
    /// application per replica, so concurrent `apply`/`sync` callers
    /// cannot both claim the same log index and apply a batch twice.
    applied: Mutex<usize>,
}

/// One answer from a routed read.
#[derive(Debug)]
pub struct RoutedRead {
    /// Replica index that served the read.
    pub replica: usize,
    /// Version of the snapshot the answer was computed on.
    pub version: u64,
    /// Transitive-closure pairs of the union adjacency, sorted.
    pub pairs: Vec<Pair>,
    /// FNV-1a checksum of `pairs` — the bit-identity currency.
    pub checksum: u64,
}

/// R replicas of one graph behind a single write path.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    log: Mutex<Vec<UpdateBatch>>,
    cursor: AtomicUsize,
}

impl ReplicaSet {
    /// Stand up `replicas` copies of `graph`, each sharded over its own
    /// fresh grid of `devices_per_replica` simulated devices.
    pub fn new(
        graph: &LabeledGraph,
        replicas: usize,
        devices_per_replica: usize,
    ) -> Result<ReplicaSet> {
        assert!(replicas >= 1, "a replica set needs at least the primary");
        let replicas = (0..replicas)
            .map(|_| {
                let grid = DeviceGrid::new(devices_per_replica.max(1));
                Ok(Replica {
                    store: VersionedGraph::new(&grid, graph)?,
                    applied: Mutex::new(0),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ReplicaSet {
            replicas,
            log: Mutex::new(Vec::new()),
            cursor: AtomicUsize::new(0),
        })
    }

    /// Number of replicas (primary included).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true: the primary always exists).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Version the write path has acknowledged (primary's version).
    pub fn version(&self) -> u64 {
        self.applied_version(0)
    }

    /// Applied version of replica `r`.
    pub fn applied_version(&self, r: usize) -> u64 {
        self.replicas[r].store.version()
    }

    fn wire_bytes(batch: &UpdateBatch) -> u64 {
        FANOUT_HEADER_BYTES + FANOUT_BYTES_PER_OP * batch.len() as u64
    }

    fn sync_one(&self, r: usize, log: &[UpdateBatch]) -> Result<u64> {
        let replica = &self.replicas[r];
        let mut at = replica.applied.lock().unwrap();
        while *at < log.len() {
            let batch = &log[*at];
            if r != 0 {
                // Follower delivery: meter the batch leaving the
                // primary's device 0 for a peer grid.
                self.replicas[0]
                    .store
                    .grid()
                    .comm()
                    .send_bytes(0, Self::wire_bytes(batch));
                metrics_global()
                    .counter("spbla_replica_fanout_bytes_total")
                    .inc(Self::wire_bytes(batch));
            }
            replica.store.apply(batch)?;
            *at += 1;
        }
        let version = replica.store.version();
        drop(at);
        metrics_global()
            .gauge(&labeled(
                "spbla_replica_applied_version",
                &[("replica", &r.to_string())],
            ))
            .set(version);
        Ok(version)
    }

    /// Apply `batch` through the whole set: primary first, then every
    /// follower, with fan-out metered per delivery. Returns the new
    /// acknowledged version.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<u64> {
        self.apply_lagging(batch, &[])
    }

    /// Apply `batch` but leave the listed replicas behind (lag
    /// injection for routing tests and the replication ablation). The
    /// laggards catch up on their next [`ReplicaSet::sync`] or on the
    /// next full [`ReplicaSet::apply`].
    pub fn apply_lagging(&self, batch: &UpdateBatch, laggards: &[usize]) -> Result<u64> {
        let log = {
            let mut log = self.log.lock().unwrap();
            log.push(batch.clone());
            log.clone()
        };
        let mut acked = 0;
        for r in 0..self.replicas.len() {
            if r != 0 && laggards.contains(&r) {
                continue;
            }
            let v = self.sync_one(r, &log)?;
            if r == 0 {
                acked = v;
            }
        }
        Ok(acked)
    }

    /// Replay any missed log entries on replica `r`.
    pub fn sync(&self, r: usize) -> Result<u64> {
        let log = self.log.lock().unwrap().clone();
        self.sync_one(r, &log)
    }

    /// Pick a replica whose applied version is ≥ `min_version`:
    /// round-robin from a rotating cursor, skipping laggards (each
    /// skipped candidate counts one lag fallback). Falls back to the
    /// primary, which by construction holds every acknowledged version.
    pub fn route(&self, min_version: u64) -> usize {
        let n = self.replicas.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        for k in 0..n {
            let r = (start + k) % n;
            if self.applied_version(r) >= min_version {
                if k > 0 {
                    metrics_global()
                        .counter("spbla_replica_lag_fallbacks_total")
                        .inc(k as u64);
                }
                return r;
            }
        }
        0
    }

    /// Serve a versioned closure read: route to a replica at or past
    /// `min_version`, compute the transitive closure of its current
    /// union adjacency on that replica's grid, and return the sorted
    /// pairs with their checksum.
    pub fn read_closure(&self, min_version: u64) -> Result<RoutedRead> {
        let r = self.route(min_version);
        self.read_closure_on(r)
    }

    /// The closure read, pinned to a specific replica (the ablation
    /// path measures each replica directly).
    pub fn read_closure_on(&self, r: usize) -> Result<RoutedRead> {
        let replica = &self.replicas[r];
        let snapshot = replica.store.pin();
        let n = snapshot.n_vertices();
        let adjacency = CsrBool::from_pairs(n, n, &snapshot.adjacency_pairs())?;
        let closure = closure_delta_dist(&adjacency, replica.store.grid())?;
        let pairs = closure.to_pairs();
        let checksum = checksum_pairs(&pairs);
        metrics_global()
            .counter(&labeled(
                "spbla_replica_reads_total",
                &[("replica", &r.to_string())],
            ))
            .inc(1);
        Ok(RoutedRead {
            replica: r,
            version: snapshot.version(),
            pairs,
            checksum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::SymbolTable;

    fn chain(table: &mut SymbolTable, n: u32) -> LabeledGraph {
        let a = table.intern("a");
        LabeledGraph::from_triples(n, (0..n - 1).map(|k| (k, a, k + 1)))
    }

    #[test]
    fn replicas_stay_bit_identical_under_updates() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 12);
        let set = ReplicaSet::new(&graph, 3, 2).unwrap();
        for k in 0..4u32 {
            let mut batch = UpdateBatch::new();
            batch.insert(11, a, k).delete(k, a, k + 1);
            set.apply(&batch).unwrap();
        }
        let reads: Vec<RoutedRead> = (0..3).map(|r| set.read_closure_on(r).unwrap()).collect();
        assert!(reads.windows(2).all(|w| w[0].checksum == w[1].checksum));
        assert!(reads.windows(2).all(|w| w[0].version == w[1].version));
        assert_eq!(set.version(), 4);
    }

    #[test]
    fn routing_skips_lagging_replicas() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 8);
        let set = ReplicaSet::new(&graph, 3, 1).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(7, a, 0);
        set.apply_lagging(&batch, &[2]).unwrap();
        assert_eq!(set.applied_version(0), 1);
        assert_eq!(set.applied_version(1), 1);
        assert_eq!(set.applied_version(2), 0);
        // A read pinned at version 1 never lands on the laggard.
        for _ in 0..8 {
            assert_ne!(set.route(1), 2);
        }
        // A version-0 read may use any replica, including the laggard.
        let hit_laggard = (0..8).any(|_| set.route(0) == 2);
        assert!(hit_laggard);
        // After catch-up the laggard serves the same answer.
        set.sync(2).unwrap();
        assert_eq!(set.applied_version(2), 1);
        let a0 = set.read_closure_on(0).unwrap();
        let a2 = set.read_closure_on(2).unwrap();
        assert_eq!(a0.checksum, a2.checksum);
    }

    #[test]
    fn fanout_is_metered_on_the_primary_grid() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 6);
        let set = ReplicaSet::new(&graph, 2, 1).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(5, a, 0).insert(4, a, 0);
        set.apply(&batch).unwrap();
        let d2d = set.replicas[0].store.grid().total_stats().d2d_bytes;
        assert_eq!(
            d2d,
            FANOUT_HEADER_BYTES + 2 * FANOUT_BYTES_PER_OP,
            "one follower delivery of a two-op batch"
        );
    }
}
