//! Replica sets: R copies of a versioned graph, each on its own
//! [`DeviceGrid`], behind one write path.
//!
//! ## Routing rule
//!
//! A versioned read names the minimum version it was pinned at; it may
//! be served by *any* replica whose applied version is ≥ that pin.
//! [`ReplicaSet::route`] walks replicas round-robin from a rotating
//! cursor and takes the first live replica that qualifies; every
//! candidate skipped on the way — lagging *or* failed — is counted in
//! `spbla_replica_lag_fallbacks_total`, including all `R` of them when
//! nothing qualifies and the read falls back to the primary. Replica 0
//! is the primary and is always synced first, so the fallback always
//! holds every acknowledged version.
//!
//! ## Write fan-out and the replication log
//!
//! [`ReplicaSet::apply`] appends the batch to a bounded in-set log and
//! replays it on every live replica. Each follower delivery is metered
//! through the primary grid's [`Comm`] layer (`send_bytes`) at the
//! batch's wire size, so replication traffic shows up in the same
//! per-device d2d accounting as every other cross-device transfer.
//!
//! The log is a ring with a retention *base*: once every replica that
//! can still catch up from the log has applied a prefix, that prefix is
//! dropped. A replica failed by injection ([`ReplicaSet::fail`]) pins
//! retention at its applied index, so [`ReplicaSet::revive`] replays
//! exactly the batches it missed — catch-up, not a fresh full copy.
//! Only a *poisoned* replica (one whose apply path panicked) is
//! excluded from the retention horizon: its state is untrusted, so
//! revival rebuilds it from the primary's snapshot at the primary's
//! version and the log needs no history for it.
//!
//! ## Failure containment
//!
//! A panic inside a replica's apply path is caught, the replica is
//! marked failed + poisoned, and the set keeps serving: the write is
//! still acknowledged by the primary (degraded fan-out, counted in
//! `spbla_replica_degraded_writes_total`), routing skips the casualty,
//! and reads pinned to it surface a typed
//! [`DurableError::ReplicaFailed`] instead of propagating the panic.
//!
//! [`Comm`]: spbla_multidev::Comm

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

use spbla_core::{CsrBool, Pair};
use spbla_graph::closure::closure_delta_dist;
use spbla_graph::LabeledGraph;
use spbla_multidev::DeviceGrid;
use spbla_obs::{labeled, metrics_global};
use spbla_stream::{checksum_pairs, UpdateBatch, VersionedGraph};

use crate::error::{DurableError, Result};

/// Wire-size model for one fanned-out update record: op tag + label
/// index + two endpoints, plus a fixed record header — matching the
/// WAL's record encoding, which is what a real follower link would
/// carry.
const FANOUT_HEADER_BYTES: u64 = 16;
const FANOUT_BYTES_PER_OP: u64 = 13;

/// The bounded replication log: entries carry absolute indices
/// `base..base + entries.len()`, and truncation advances `base` once a
/// prefix has been applied by every replica that still catches up from
/// the log.
struct SetLog {
    base: usize,
    entries: VecDeque<UpdateBatch>,
}

impl SetLog {
    /// Absolute index one past the newest entry.
    fn head(&self) -> usize {
        self.base + self.entries.len()
    }

    /// Clone the tail starting at absolute index `at`. The retention
    /// invariant (no replica's applied index ever drops below `base`
    /// while it can still replay) makes `at < base` unreachable.
    fn tail_from(&self, at: usize) -> Vec<UpdateBatch> {
        debug_assert!(
            at >= self.base,
            "replica applied index {at} fell below the log base {}",
            self.base
        );
        self.entries
            .iter()
            .skip(at.saturating_sub(self.base))
            .cloned()
            .collect()
    }

    /// Drop every entry below the absolute index `horizon`.
    fn truncate_to(&mut self, horizon: usize) {
        while self.base < horizon && self.entries.pop_front().is_some() {
            self.base += 1;
        }
    }
}

struct Replica {
    /// The store sits behind an `RwLock` so a poisoned replica can be
    /// *replaced* wholesale on revival; normal applies and reads only
    /// ever take the read side ([`VersionedGraph`] serialises its own
    /// writers internally).
    store: RwLock<VersionedGraph>,
    /// Absolute log index this replica has applied up to. A mutex, not
    /// an atomic: holding it across the whole catch-up loop serializes
    /// application per replica, so concurrent `apply`/`sync` callers
    /// cannot both claim the same log index and apply a batch twice.
    applied: Mutex<usize>,
    /// Out of service: skipped by routing and fan-out until revived.
    failed: AtomicBool,
    /// The apply path panicked (or diverged) on this replica: its state
    /// is untrusted and revival must rebuild from the primary instead
    /// of replaying the log tail.
    poisoned: AtomicBool,
    /// Failpoint: the next apply on this replica panics. Test-only
    /// plumbing for exercising the containment path — the store itself
    /// has no natural panic.
    fail_next_apply: AtomicBool,
}

impl Replica {
    /// Lock the applied counter, absorbing poison: the counter is plain
    /// data and the catch-up loop's invariant (only advanced past
    /// successfully applied entries) holds even if a past holder
    /// panicked between applies.
    fn lock_applied(&self) -> std::sync::MutexGuard<'_, usize> {
        self.applied.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// One answer from a routed read.
#[derive(Debug)]
pub struct RoutedRead {
    /// Replica index that served the read.
    pub replica: usize,
    /// Version of the snapshot the answer was computed on.
    pub version: u64,
    /// Transitive-closure pairs of the union adjacency, sorted.
    pub pairs: Vec<Pair>,
    /// FNV-1a checksum of `pairs` — the bit-identity currency.
    pub checksum: u64,
}

/// What [`ReplicaSet::revive`] did to bring a replica back.
#[derive(Debug, Clone, Copy)]
pub struct RejoinStats {
    /// The replica that rejoined.
    pub replica: usize,
    /// Log entries replayed to catch up (0 on a full resync).
    pub replayed: u64,
    /// Whether the replica's state had to be rebuilt from the primary
    /// (only after a poisoning failure) instead of replaying its lag.
    pub full_resync: bool,
    /// The replica's applied version after rejoining.
    pub version: u64,
}

/// R replicas of one graph behind a single write path.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    log: Mutex<SetLog>,
    cursor: AtomicUsize,
    devices_per_replica: usize,
}

impl ReplicaSet {
    /// Stand up `replicas` copies of `graph`, each sharded over its own
    /// fresh grid of `devices_per_replica` simulated devices.
    pub fn new(
        graph: &LabeledGraph,
        replicas: usize,
        devices_per_replica: usize,
    ) -> Result<ReplicaSet> {
        assert!(replicas >= 1, "a replica set needs at least the primary");
        let devices_per_replica = devices_per_replica.max(1);
        let replicas = (0..replicas)
            .map(|_| {
                let grid = DeviceGrid::new(devices_per_replica);
                Ok(Replica {
                    store: RwLock::new(VersionedGraph::new(&grid, graph)?),
                    applied: Mutex::new(0),
                    failed: AtomicBool::new(false),
                    poisoned: AtomicBool::new(false),
                    fail_next_apply: AtomicBool::new(false),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(ReplicaSet {
            replicas,
            log: Mutex::new(SetLog {
                base: 0,
                entries: VecDeque::new(),
            }),
            cursor: AtomicUsize::new(0),
            devices_per_replica,
        })
    }

    /// Number of replicas (primary included).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the set is empty (never true: the primary always exists).
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Version the write path has acknowledged (primary's version).
    pub fn version(&self) -> u64 {
        self.applied_version(0)
    }

    /// Applied version of replica `r` (0 if its store is unreadable
    /// after a poisoning failure — use [`ReplicaSet::is_failed`] to
    /// distinguish).
    pub fn applied_version(&self, r: usize) -> u64 {
        self.store_version(r).unwrap_or(0)
    }

    /// Whether replica `r` is out of service (failed by injection or
    /// poisoned by a panic).
    pub fn is_failed(&self, r: usize) -> bool {
        self.replicas[r].failed.load(Ordering::Acquire)
    }

    /// Entries currently retained by the in-set replication log. Stays
    /// bounded (≈0 after each write) while every replica is live;
    /// grows only by a failed replica's lag, and drains again once it
    /// rejoins.
    pub fn log_entries(&self) -> usize {
        self.log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Version of replica `r`, or `None` when its store lock is
    /// poisoned — in which case the replica is auto-marked failed so
    /// routing stops considering it.
    fn store_version(&self, r: usize) -> Option<u64> {
        match self.replicas[r].store.read() {
            Ok(store) => Some(store.version()),
            Err(_) => {
                self.mark_failed(r, true);
                None
            }
        }
    }

    fn mark_failed(&self, r: usize, poisoned: bool) {
        let replica = &self.replicas[r];
        let newly = !replica.failed.swap(true, Ordering::AcqRel);
        if poisoned {
            replica.poisoned.store(true, Ordering::Release);
        }
        if newly {
            metrics_global()
                .counter("spbla_replica_failures_total")
                .inc(1);
        }
    }

    /// Take replica `r` out of service: routing skips it, fan-out stops
    /// delivering to it, and its applied index pins log retention so
    /// [`ReplicaSet::revive`] replays exactly the batches it missed.
    /// The primary (replica 0) anchors the write path and cannot be
    /// failed.
    pub fn fail(&self, r: usize) -> Result<()> {
        if r == 0 {
            return Err(DurableError::ReplicaFailed {
                replica: 0,
                reason: "the primary anchors the write path and cannot be failed".into(),
            });
        }
        self.mark_failed(r, false);
        Ok(())
    }

    /// Bring replica `r` back into service. A replica failed by
    /// injection rejoins by replaying only the log tail past its
    /// applied index; a poisoned replica (apply-path panic) is rebuilt
    /// from the primary's current snapshot at the primary's version.
    pub fn revive(&self, r: usize) -> Result<RejoinStats> {
        let replica = &self.replicas[r];
        if replica.poisoned.load(Ordering::Acquire) {
            return self.resync_from_primary(r);
        }
        let missed = {
            let at = replica.lock_applied();
            let log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
            (log.head() - *at) as u64
        };
        replica.failed.store(false, Ordering::Release);
        let version = self.sync_one(r)?;
        self.truncate_log();
        metrics_global()
            .counter("spbla_replica_rejoins_total")
            .inc(1);
        Ok(RejoinStats {
            replica: r,
            replayed: missed,
            full_resync: false,
            version,
        })
    }

    /// Rebuild a poisoned replica from the primary: fresh grid, fresh
    /// store loaded from the primary's pinned snapshot at the primary's
    /// version, applied index fast-forwarded to the log head.
    fn resync_from_primary(&self, r: usize) -> Result<RejoinStats> {
        let (graph, version) = {
            let primary =
                self.replicas[0]
                    .store
                    .read()
                    .map_err(|_| DurableError::ReplicaFailed {
                        replica: 0,
                        reason: "primary store is poisoned; the set cannot be recovered in place"
                            .into(),
                    })?;
            let snapshot = primary.pin();
            (snapshot.to_labeled_graph(), snapshot.version())
        };
        let grid = DeviceGrid::new(self.devices_per_replica);
        let fresh = VersionedGraph::new_at_version(&grid, &graph, version)?;

        let replica = &self.replicas[r];
        // Hold `applied` across the store swap so no catch-up loop can
        // interleave with the replacement, and fast-forward it to the
        // log head the snapshot already covers (the primary has applied
        // every entry in the log before this runs).
        let mut at = replica.lock_applied();
        {
            let mut store = replica
                .store
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *store = fresh;
        }
        replica.store.clear_poison();
        replica.applied.clear_poison();
        *at = self
            .log
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .head();
        drop(at);
        replica.poisoned.store(false, Ordering::Release);
        replica.failed.store(false, Ordering::Release);
        self.truncate_log();
        metrics_global()
            .counter("spbla_replica_resyncs_total")
            .inc(1);
        metrics_global()
            .gauge(&labeled(
                "spbla_replica_applied_version",
                &[("replica", &r.to_string())],
            ))
            .set(version);
        Ok(RejoinStats {
            replica: r,
            replayed: 0,
            full_resync: true,
            version,
        })
    }

    fn wire_bytes(batch: &UpdateBatch) -> u64 {
        FANOUT_HEADER_BYTES + FANOUT_BYTES_PER_OP * batch.len() as u64
    }

    /// Replay every unapplied log entry on replica `r`. Panics inside
    /// the apply path are contained: the replica is marked failed +
    /// poisoned and a typed [`DurableError::ReplicaFailed`] comes back
    /// instead of the unwind.
    fn sync_one(&self, r: usize) -> Result<u64> {
        let replica = &self.replicas[r];
        if replica.failed.load(Ordering::Acquire) {
            return Err(DurableError::ReplicaFailed {
                replica: r,
                reason: "out of service; revive() to rejoin".into(),
            });
        }
        let mut at = replica.lock_applied();
        let tail = {
            let log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
            log.tail_from(*at)
        };
        for batch in &tail {
            if r != 0 {
                // Follower delivery: meter the batch leaving the
                // primary's device 0 for a peer grid.
                if let Ok(primary) = self.replicas[0].store.read() {
                    primary.grid().comm().send_bytes(0, Self::wire_bytes(batch));
                }
                metrics_global()
                    .counter("spbla_replica_fanout_bytes_total")
                    .inc(Self::wire_bytes(batch));
            }
            let inject = replica.fail_next_apply.swap(false, Ordering::AcqRel);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if inject {
                    panic!("injected apply failure on replica {r}");
                }
                let store = replica
                    .store
                    .read()
                    .unwrap_or_else(|_| panic!("replica {r} store lock poisoned"));
                store.apply(batch).map(|_| ())
            }));
            match outcome {
                Ok(Ok(())) => *at += 1,
                Ok(Err(e)) => {
                    if r == 0 {
                        // The primary rejecting a batch is the caller's
                        // error (e.g. out-of-bounds); the replica is fine.
                        return Err(e.into());
                    }
                    // A follower rejecting what the primary accepted is
                    // divergence: quarantine it for a full resync.
                    self.mark_failed(r, true);
                    return Err(DurableError::ReplicaFailed {
                        replica: r,
                        reason: format!("diverged from the primary while applying a batch: {e}"),
                    });
                }
                Err(_) => {
                    self.mark_failed(r, true);
                    return Err(DurableError::ReplicaFailed {
                        replica: r,
                        reason: "panicked while applying a batch; poisoned — revive() rebuilds it from the primary"
                            .into(),
                    });
                }
            }
        }
        drop(at);
        let version = self
            .store_version(r)
            .ok_or_else(|| DurableError::ReplicaFailed {
                replica: r,
                reason: "store unreadable after catch-up".into(),
            })?;
        metrics_global()
            .gauge(&labeled(
                "spbla_replica_applied_version",
                &[("replica", &r.to_string())],
            ))
            .set(version);
        Ok(version)
    }

    /// Drop the log prefix every catch-up-capable replica has applied.
    /// Failed-but-healthy replicas pin retention at their applied index
    /// (their lag must stay replayable for [`ReplicaSet::revive`]);
    /// poisoned replicas are excluded — they rejoin via full resync and
    /// need no history.
    fn truncate_log(&self) {
        let mut horizon = usize::MAX;
        for replica in &self.replicas {
            if replica.poisoned.load(Ordering::Acquire) {
                continue;
            }
            horizon = horizon.min(*replica.lock_applied());
        }
        let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
        if horizon == usize::MAX {
            return;
        }
        let horizon = horizon.min(log.head());
        log.truncate_to(horizon);
        metrics_global()
            .gauge("spbla_replica_log_entries")
            .set(log.entries.len() as u64);
    }

    /// Apply `batch` through the whole set: primary first, then every
    /// live follower, with fan-out metered per delivery. Returns the
    /// new acknowledged version. A follower failing mid-delivery does
    /// not fail the write — the set degrades (counted in
    /// `spbla_replica_degraded_writes_total`) and keeps acknowledging
    /// on the primary.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<u64> {
        self.apply_lagging(batch, &[])
    }

    /// Apply `batch` but leave the listed replicas behind (lag
    /// injection for routing tests and the replication ablation). The
    /// laggards catch up on their next [`ReplicaSet::sync`] or on the
    /// next full [`ReplicaSet::apply`].
    pub fn apply_lagging(&self, batch: &UpdateBatch, laggards: &[usize]) -> Result<u64> {
        {
            let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
            log.entries.push_back(batch.clone());
        }
        // The primary validates the batch; a rejection retracts it so
        // no follower ever replays an entry the primary refused.
        let acked = match self.sync_one(0) {
            Ok(v) => v,
            Err(e) => {
                let mut log = self.log.lock().unwrap_or_else(PoisonError::into_inner);
                log.entries.pop_back();
                return Err(e);
            }
        };
        for r in 1..self.replicas.len() {
            if laggards.contains(&r) || self.replicas[r].failed.load(Ordering::Acquire) {
                continue;
            }
            if self.sync_one(r).is_err() {
                // The replica marked itself failed; the write is still
                // acknowledged with degraded fan-out.
                metrics_global()
                    .counter("spbla_replica_degraded_writes_total")
                    .inc(1);
            }
        }
        self.truncate_log();
        Ok(acked)
    }

    /// Replay any missed log entries on replica `r`.
    pub fn sync(&self, r: usize) -> Result<u64> {
        let version = self.sync_one(r)?;
        self.truncate_log();
        Ok(version)
    }

    /// Arm the failpoint: the next batch applied on replica `r` panics
    /// inside the apply path, exercising the containment machinery
    /// (caught, marked failed + poisoned, typed error). Test and
    /// harness plumbing — the store has no natural panic of its own.
    pub fn fail_next_apply(&self, r: usize) {
        self.replicas[r]
            .fail_next_apply
            .store(true, Ordering::Release);
    }

    /// Pick a replica whose applied version is ≥ `min_version`:
    /// round-robin from a rotating cursor, skipping failed and lagging
    /// replicas. Every skipped candidate counts one lag fallback —
    /// including all of them when nothing qualifies and the read falls
    /// back to the primary, which by construction holds every
    /// acknowledged version.
    pub fn route(&self, min_version: u64) -> usize {
        let n = self.replicas.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) % n;
        let mut skipped = 0u64;
        for k in 0..n {
            let r = (start + k) % n;
            if self.replicas[r].failed.load(Ordering::Acquire) {
                skipped += 1;
                continue;
            }
            match self.store_version(r) {
                Some(v) if v >= min_version => {
                    if skipped > 0 {
                        metrics_global()
                            .counter("spbla_replica_lag_fallbacks_total")
                            .inc(skipped);
                    }
                    return r;
                }
                _ => skipped += 1,
            }
        }
        // Nothing qualified: every walked candidate was a skip, and the
        // primary absorbs the read.
        metrics_global()
            .counter("spbla_replica_lag_fallbacks_total")
            .inc(skipped);
        0
    }

    /// Serve a versioned closure read: route to a replica at or past
    /// `min_version`, compute the transitive closure of its current
    /// union adjacency on that replica's grid, and return the sorted
    /// pairs with their checksum.
    pub fn read_closure(&self, min_version: u64) -> Result<RoutedRead> {
        let r = self.route(min_version);
        self.read_closure_on(r)
    }

    /// The closure read, pinned to a specific replica (the ablation
    /// path measures each replica directly). A failed or poisoned
    /// replica answers with a typed [`DurableError::ReplicaFailed`],
    /// never a panic.
    pub fn read_closure_on(&self, r: usize) -> Result<RoutedRead> {
        let replica = &self.replicas[r];
        if replica.failed.load(Ordering::Acquire) {
            return Err(DurableError::ReplicaFailed {
                replica: r,
                reason: "out of service; route() around it or revive() it".into(),
            });
        }
        let store = replica.store.read().map_err(|_| {
            self.mark_failed(r, true);
            DurableError::ReplicaFailed {
                replica: r,
                reason: "store lock poisoned by a failed apply".into(),
            }
        })?;
        let snapshot = store.pin();
        let n = snapshot.n_vertices();
        let adjacency = CsrBool::from_pairs(n, n, &snapshot.adjacency_pairs())?;
        let closure = closure_delta_dist(&adjacency, store.grid())?;
        let pairs = closure.to_pairs();
        let checksum = checksum_pairs(&pairs);
        metrics_global()
            .counter(&labeled(
                "spbla_replica_reads_total",
                &[("replica", &r.to_string())],
            ))
            .inc(1);
        Ok(RoutedRead {
            replica: r,
            version: snapshot.version(),
            pairs,
            checksum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::SymbolTable;

    fn chain(table: &mut SymbolTable, n: u32) -> LabeledGraph {
        let a = table.intern("a");
        LabeledGraph::from_triples(n, (0..n - 1).map(|k| (k, a, k + 1)))
    }

    #[test]
    fn replicas_stay_bit_identical_under_updates() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 12);
        let set = ReplicaSet::new(&graph, 3, 2).unwrap();
        for k in 0..4u32 {
            let mut batch = UpdateBatch::new();
            batch.insert(11, a, k).delete(k, a, k + 1);
            set.apply(&batch).unwrap();
        }
        let reads: Vec<RoutedRead> = (0..3).map(|r| set.read_closure_on(r).unwrap()).collect();
        assert!(reads.windows(2).all(|w| w[0].checksum == w[1].checksum));
        assert!(reads.windows(2).all(|w| w[0].version == w[1].version));
        assert_eq!(set.version(), 4);
    }

    #[test]
    fn routing_skips_lagging_replicas() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 8);
        let set = ReplicaSet::new(&graph, 3, 1).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(7, a, 0);
        set.apply_lagging(&batch, &[2]).unwrap();
        assert_eq!(set.applied_version(0), 1);
        assert_eq!(set.applied_version(1), 1);
        assert_eq!(set.applied_version(2), 0);
        // A read pinned at version 1 never lands on the laggard.
        for _ in 0..8 {
            assert_ne!(set.route(1), 2);
        }
        // A version-0 read may use any replica, including the laggard.
        let hit_laggard = (0..8).any(|_| set.route(0) == 2);
        assert!(hit_laggard);
        // A pin nobody holds falls back to the primary — and counts
        // every skipped candidate, not zero (the historical bug).
        let fallbacks = metrics_global().counter("spbla_replica_lag_fallbacks_total");
        let before = fallbacks.get();
        assert_eq!(set.route(u64::MAX), 0);
        assert!(
            fallbacks.get() - before >= set.len() as u64,
            "a full-walk fallback must count all {} skipped candidates",
            set.len()
        );
        // After catch-up the laggard serves the same answer.
        set.sync(2).unwrap();
        assert_eq!(set.applied_version(2), 1);
        let a0 = set.read_closure_on(0).unwrap();
        let a2 = set.read_closure_on(2).unwrap();
        assert_eq!(a0.checksum, a2.checksum);
    }

    #[test]
    fn fanout_is_metered_on_the_primary_grid() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 6);
        let set = ReplicaSet::new(&graph, 2, 1).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(5, a, 0).insert(4, a, 0);
        set.apply(&batch).unwrap();
        let primary = set.replicas[0].store.read().unwrap();
        let d2d = primary.grid().total_stats().d2d_bytes;
        assert_eq!(
            d2d,
            FANOUT_HEADER_BYTES + 2 * FANOUT_BYTES_PER_OP,
            "one follower delivery of a two-op batch"
        );
    }

    #[test]
    fn failed_replica_rejoins_by_replaying_only_its_lag() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 10);
        let set = ReplicaSet::new(&graph, 3, 1).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(9, a, 0);
        set.apply(&batch).unwrap();

        set.fail(1).unwrap();
        assert!(set.is_failed(1));
        // Writes keep acknowledging with degraded fan-out.
        for k in 0..3u32 {
            let mut batch = UpdateBatch::new();
            batch.insert(9, a, k + 1);
            assert_eq!(set.apply(&batch).unwrap(), (k + 2) as u64);
        }
        // Routing never lands on the casualty; reads stay error-free.
        for _ in 0..8 {
            let read = set.read_closure(set.version()).unwrap();
            assert_ne!(read.replica, 1);
        }
        assert!(matches!(
            set.read_closure_on(1),
            Err(DurableError::ReplicaFailed { replica: 1, .. })
        ));
        // Its lag pins the log: exactly the 3 missed batches retained.
        assert_eq!(set.log_entries(), 3);

        let stats = set.revive(1).unwrap();
        assert_eq!(stats.replayed, 3, "rejoin replays exactly the lag");
        assert!(!stats.full_resync);
        assert_eq!(stats.version, set.version());
        assert!(!set.is_failed(1));
        // Drained log, bit-identical answers.
        assert_eq!(set.log_entries(), 0);
        let a0 = set.read_closure_on(0).unwrap();
        let a1 = set.read_closure_on(1).unwrap();
        assert_eq!(a0.checksum, a1.checksum);
    }

    #[test]
    fn primary_cannot_be_failed() {
        let mut table = SymbolTable::new();
        let graph = chain(&mut table, 4);
        let set = ReplicaSet::new(&graph, 2, 1).unwrap();
        assert!(matches!(
            set.fail(0),
            Err(DurableError::ReplicaFailed { replica: 0, .. })
        ));
        assert!(!set.is_failed(0));
    }

    #[test]
    fn log_memory_stays_flat_over_a_long_stream() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 16);
        let set = ReplicaSet::new(&graph, 3, 1).unwrap();
        for k in 0..1000u32 {
            let mut batch = UpdateBatch::new();
            let u = k % 16;
            let v = (k + 7) % 16;
            if k % 2 == 0 {
                batch.insert(u, a, v);
            } else {
                batch.delete(u, a, v);
            }
            set.apply(&batch).unwrap();
            assert!(
                set.log_entries() <= 1,
                "live set must truncate the log every write, had {} after batch {k}",
                set.log_entries()
            );
        }
        assert_eq!(set.log_entries(), 0);
        let reads: Vec<RoutedRead> = (0..3).map(|r| set.read_closure_on(r).unwrap()).collect();
        assert!(reads.windows(2).all(|w| w[0].checksum == w[1].checksum));
    }

    #[test]
    fn panicking_replica_does_not_take_down_the_set() {
        let mut table = SymbolTable::new();
        let a = table.intern("a");
        let graph = chain(&mut table, 8);
        let set = ReplicaSet::new(&graph, 3, 1).unwrap();
        set.fail_next_apply(2);

        // The write still acknowledges; the casualty is quarantined.
        let mut batch = UpdateBatch::new();
        batch.insert(7, a, 0);
        assert_eq!(set.apply(&batch).unwrap(), 1);
        assert!(set.is_failed(2));

        // Healthy replicas keep serving typed answers, no panics.
        let read = set.read_closure(1).unwrap();
        assert_ne!(read.replica, 2);
        assert!(matches!(
            set.read_closure_on(2),
            Err(DurableError::ReplicaFailed { replica: 2, .. })
        ));

        // Poisoned state rejoins through a full resync from the primary.
        let stats = set.revive(2).unwrap();
        assert!(stats.full_resync);
        assert_eq!(stats.replayed, 0);
        assert_eq!(stats.version, set.version());
        let a0 = set.read_closure_on(0).unwrap();
        let a2 = set.read_closure_on(2).unwrap();
        assert_eq!(a0.checksum, a2.checksum);

        // And the revived replica tracks subsequent writes normally.
        let mut batch = UpdateBatch::new();
        batch.insert(6, a, 0);
        set.apply(&batch).unwrap();
        assert_eq!(set.applied_version(2), set.version());
    }
}
