//! Typed durability errors.
//!
//! The recovery contract is: a crash artifact (a torn record at the
//! tail of the last segment) is *expected* and recovers cleanly to the
//! longest intact prefix; anything else that fails to parse — a
//! checksum mismatch, a malformed header, a torn record that is *not*
//! at the tail — is surfaced as a typed [`DurableError`], never decoded
//! into a half-corrupt catalog.

use spbla_core::SpblaError;
use spbla_engine::EngineError;

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// What was being attempted (`"open"`, `"append"`, …).
        op: &'static str,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A log segment or checkpoint failed validation: bad magic, a
    /// checksum mismatch, a non-tail torn record, a version gap.
    Corrupt {
        /// File the corruption was detected in.
        path: String,
        /// Byte offset of the offending record or header.
        offset: u64,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// No readable checkpoint exists in the durability directory, so
    /// there is nothing to recover from.
    NoCheckpoint {
        /// The directory that was scanned.
        dir: String,
    },
    /// A value is wider than its on-disk field, so encoding it would
    /// silently truncate; the record is refused instead.
    TooLarge {
        /// What was being encoded (`"label name"`, `"batch ops"`, …).
        what: &'static str,
        /// Actual size of the value.
        len: usize,
        /// Maximum the format's field width can represent.
        max: usize,
    },
    /// A replica is out of service: explicitly failed by injection,
    /// poisoned by a panic inside its apply path, or named by an
    /// operation that requires a live replica. The rest of the set
    /// keeps serving; only the named replica is affected.
    ReplicaFailed {
        /// Index of the replica in its set.
        replica: usize,
        /// Why it is out of service.
        reason: String,
    },
    /// Replaying the recovered tail into the engine failed.
    Engine(EngineError),
    /// A kernel-level operation failed during recovery or replication.
    Exec(SpblaError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io { path, op, error } => {
                write!(f, "{op} failed on {path}: {error}")
            }
            DurableError::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt durable state in {path} at byte {offset}: {reason}"
            ),
            DurableError::NoCheckpoint { dir } => {
                write!(f, "no readable checkpoint under {dir}")
            }
            DurableError::TooLarge { what, len, max } => {
                write!(
                    f,
                    "cannot encode {what} of size {len}: format limit is {max}"
                )
            }
            DurableError::ReplicaFailed { replica, reason } => {
                write!(f, "replica {replica} is out of service: {reason}")
            }
            DurableError::Engine(e) => write!(f, "engine replay failed: {e}"),
            DurableError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<EngineError> for DurableError {
    fn from(e: EngineError) -> DurableError {
        DurableError::Engine(e)
    }
}

impl From<SpblaError> for DurableError {
    fn from(e: SpblaError) -> DurableError {
        DurableError::Exec(e)
    }
}

/// Shorthand for durability results.
pub type Result<T> = std::result::Result<T, DurableError>;
