//! Durability and replication for the SPbLA serving engine.
//!
//! Three cooperating subsystems, all downstream of the same insight:
//! a serving engine over Boolean linear algebra is only a *system*
//! once it survives restarts, scales reads, and is measured under
//! honest load.
//!
//! * **Write-ahead durability** ([`wal`], [`checkpoint`], [`store`]):
//!   every applied [`UpdateBatch`] is flushed to a segmented,
//!   checksummed log before the apply is acknowledged; periodic
//!   checkpoints serialize the label matrices through the k²-tree
//!   codec; [`recover`] = newest readable checkpoint + tail replay,
//!   reconstructing every live version bit-identically. A torn record
//!   at the log tail is a clean crash artifact; anything else is a
//!   typed [`DurableError`].
//! * **Replication** ([`replica`]): a [`ReplicaSet`] of R device grids
//!   behind one write path. Versioned reads route round-robin to any
//!   replica whose applied version covers the pin, skipping laggards;
//!   update fan-out is metered through the `Comm` layer like every
//!   other cross-device transfer.
//! * **Open-loop load** ([`load`]): seeded Poisson arrivals submitted
//!   on schedule whether or not earlier requests finished — rejections
//!   are counted, never waited on — so the reported p50/p95/p99 and
//!   saturation point are free of coordinated omission. Two QoS tiers
//!   ([`QosTier`]) exercise the engine's tiered admission.
//!
//! [`UpdateBatch`]: spbla_stream::UpdateBatch
//! [`QosTier`]: spbla_engine::QosTier

pub mod checkpoint;
pub mod error;
pub mod load;
pub mod replica;
pub mod store;
pub mod wal;

pub use checkpoint::{list_checkpoints, read_checkpoint, write_checkpoint, Checkpoint};
pub use error::{DurableError, Result};
pub use load::{
    arrival_schedule, arrival_schedule_mixed, run_open_loop, run_open_loop_mixed, saturation_sweep,
    write_query_templates, Arrival, LoadConfig, LoadReport, SweepPoint, TierStats,
};
pub use replica::{RejoinStats, ReplicaSet, RoutedRead};
pub use store::{
    recover, recover_into_engine, DurabilityConfig, DurableLog, EngineRecovery, Recovered,
};
pub use wal::{replay, DecodedRecord, Replayed, Wal};
