//! Graph checkpoints: one file per checkpointed version, label
//! matrices serialized through the k²-tree codec.
//!
//! ## On-disk format
//!
//! A checkpoint file `ckpt-VVVVVVVVVVVVVVVVVVVV.ckp` (V = zero-padded
//! version, so lexicographic order is version order) holds:
//!
//! ```text
//! magic    8 bytes  "SPBLACKP"
//! format   u32 LE   FORMAT_VERSION
//! len      u64 LE   payload byte length
//! checksum u64 LE   FNV-1a over the payload bytes
//! payload:
//!   version    u64 LE
//!   n_vertices u32 LE
//!   n_labels   u32 LE
//!   labels     n_labels × { u16 LE name len, utf-8 name,
//!                           u32 LE blob len, K2Tree::to_bytes blob }
//! ```
//!
//! Writes go through a temp file, an fsync, an atomic rename, and a
//! directory fsync — in that order, so the data is durable before the
//! name is. A crash mid-checkpoint leaves either the complete new file
//! or none at all — never a half-written checkpoint under the
//! canonical name.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use spbla_core::K2Tree;
use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;
use spbla_obs::metrics_global;

use crate::error::{DurableError, Result};
use crate::wal::{fnv1a, sync_dir};

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"SPBLACKP";
const HEADER_LEN: usize = 8 + 4 + 8 + 8;

fn io_err(path: &Path, op: &'static str, error: std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.display().to_string(),
        op,
        error,
    }
}

fn corrupt(path: &Path, offset: u64, reason: impl Into<String>) -> DurableError {
    DurableError::Corrupt {
        path: path.display().to_string(),
        offset,
        reason: reason.into(),
    }
}

fn file_name(version: u64) -> String {
    format!("ckpt-{version:020}.ckp")
}

/// List checkpoint files under `dir` as `(version, path)`, newest
/// first.
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, "read_dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, "read_dir", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(v) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".ckp"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((v, entry.path()));
        }
    }
    out.sort_by_key(|e| std::cmp::Reverse(e.0));
    Ok(out)
}

/// A decoded checkpoint: the graph state at `version`, labels by name.
#[derive(Debug)]
pub struct Checkpoint {
    /// Version the snapshot captures.
    pub version: u64,
    /// Vertex universe size.
    pub n_vertices: u32,
    /// Per-label adjacency, decoded from the k²-tree blobs.
    pub labels: Vec<(String, K2Tree)>,
}

impl Checkpoint {
    /// Rebuild the host graph, interning label names into `table`.
    pub fn to_graph(&self, table: &mut SymbolTable) -> LabeledGraph {
        let mut graph = LabeledGraph::new(self.n_vertices);
        for (name, tree) in &self.labels {
            let label = table.intern(name);
            for (u, v) in tree.to_csr().iter() {
                graph.add_edge(u, label, v);
            }
        }
        graph
    }
}

/// Serialize `graph` at `version` and atomically publish it under
/// `dir`. Returns the final path.
pub fn write_checkpoint(
    dir: &Path,
    version: u64,
    graph: &LabeledGraph,
    table: &SymbolTable,
) -> Result<PathBuf> {
    let fits = |what: &'static str, len: usize, max: usize| -> Result<()> {
        if len > max {
            return Err(DurableError::TooLarge { what, len, max });
        }
        Ok(())
    };
    fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir", e))?;
    let mut payload = Vec::new();
    payload.extend_from_slice(&version.to_le_bytes());
    payload.extend_from_slice(&graph.n_vertices().to_le_bytes());
    let labels = graph.labels();
    fits("label count", labels.len(), u32::MAX as usize)?;
    payload.extend_from_slice(&(labels.len() as u32).to_le_bytes());
    for &label in &labels {
        let name = table.name(label).as_bytes();
        fits("label name", name.len(), u16::MAX as usize)?;
        payload.extend_from_slice(&(name.len() as u16).to_le_bytes());
        payload.extend_from_slice(name);
        let blob = K2Tree::from_csr(&graph.label_csr(label)).to_bytes();
        fits("k²-tree blob", blob.len(), u32::MAX as usize)?;
        payload.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        payload.extend_from_slice(&blob);
    }
    let path = dir.join(file_name(version));
    let tmp = dir.join(format!("{}.tmp", file_name(version)));
    {
        let mut file = File::create(&tmp).map_err(|e| io_err(&tmp, "create", e))?;
        file.write_all(MAGIC)
            .map_err(|e| io_err(&tmp, "write", e))?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())
            .map_err(|e| io_err(&tmp, "write", e))?;
        file.write_all(&(payload.len() as u64).to_le_bytes())
            .map_err(|e| io_err(&tmp, "write", e))?;
        file.write_all(&fnv1a(&payload).to_le_bytes())
            .map_err(|e| io_err(&tmp, "write", e))?;
        file.write_all(&payload)
            .map_err(|e| io_err(&tmp, "write", e))?;
        // The data must be durable before the rename can be: otherwise
        // the canonical name could survive a power loss pointing at a
        // file whose contents never hit the disk.
        file.sync_all().map_err(|e| io_err(&tmp, "sync", e))?;
    }
    fs::rename(&tmp, &path).map_err(|e| io_err(&path, "rename", e))?;
    sync_dir(dir)?;
    let m = metrics_global();
    m.counter("spbla_wal_checkpoints_total").inc(1);
    m.counter("spbla_wal_checkpoint_bytes_total")
        .inc((HEADER_LEN + payload.len()) as u64);
    Ok(path)
}

/// Read and validate one checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, "read", e))?;
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(path, 0, "checkpoint shorter than header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt(path, 0, "bad magic"));
    }
    let format = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if format != FORMAT_VERSION {
        return Err(corrupt(path, 8, format!("unsupported format {format}")));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = bytes
        .get(HEADER_LEN..HEADER_LEN + len)
        .ok_or_else(|| corrupt(path, HEADER_LEN as u64, "truncated payload"))?;
    if HEADER_LEN + len != bytes.len() {
        return Err(corrupt(path, (HEADER_LEN + len) as u64, "trailing bytes"));
    }
    if fnv1a(payload) != checksum {
        return Err(corrupt(path, 20, "payload checksum mismatch"));
    }
    let bad = |reason: &str| corrupt(path, HEADER_LEN as u64, format!("payload: {reason}"));
    let mut at = 0usize;
    let mut take = |n: usize, payload: &'_ [u8]| -> Option<std::ops::Range<usize>> {
        let end = at.checked_add(n)?;
        if end > payload.len() {
            return None;
        }
        let r = at..end;
        at = end;
        Some(r)
    };
    let version = take(8, payload)
        .map(|r| u64::from_le_bytes(payload[r].try_into().unwrap()))
        .ok_or_else(|| bad("truncated version"))?;
    let n_vertices = take(4, payload)
        .map(|r| u32::from_le_bytes(payload[r].try_into().unwrap()))
        .ok_or_else(|| bad("truncated vertex count"))?;
    let n_labels = take(4, payload)
        .map(|r| u32::from_le_bytes(payload[r].try_into().unwrap()))
        .ok_or_else(|| bad("truncated label count"))?;
    let mut labels = Vec::with_capacity(n_labels as usize);
    for _ in 0..n_labels {
        let name_len = take(2, payload)
            .map(|r| u16::from_le_bytes(payload[r].try_into().unwrap()))
            .ok_or_else(|| bad("truncated name length"))? as usize;
        let name_range = take(name_len, payload).ok_or_else(|| bad("truncated name"))?;
        let name = std::str::from_utf8(&payload[name_range])
            .map_err(|_| bad("label name is not utf-8"))?
            .to_string();
        let blob_len = take(4, payload)
            .map(|r| u32::from_le_bytes(payload[r].try_into().unwrap()))
            .ok_or_else(|| bad("truncated blob length"))? as usize;
        let blob_range = take(blob_len, payload).ok_or_else(|| bad("truncated blob"))?;
        let tree = K2Tree::from_bytes(&payload[blob_range])
            .map_err(|e| bad(&format!("label {name}: {e}")))?;
        if tree.nrows() != n_vertices || tree.ncols() != n_vertices {
            return Err(bad(&format!("label {name}: shape mismatch")));
        }
        labels.push((name, tree));
    }
    if at != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(Checkpoint {
        version,
        n_vertices,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spbla-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_graph(table: &mut SymbolTable) -> LabeledGraph {
        let a = table.intern("a");
        let b = table.intern("b");
        LabeledGraph::from_triples(
            70, // non-power-of-two, non-multiple-of-64 universe
            [(0, a, 1), (1, a, 2), (2, b, 3), (64, a, 69), (69, b, 0)],
        )
    }

    #[test]
    fn checkpoint_round_trips_the_graph() {
        let dir = tmpdir("roundtrip");
        let mut table = SymbolTable::new();
        let graph = sample_graph(&mut table);
        write_checkpoint(&dir, 7, &graph, &table).unwrap();
        let listed = list_checkpoints(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 7);
        let ckpt = read_checkpoint(&listed[0].1).unwrap();
        assert_eq!(ckpt.version, 7);
        assert_eq!(ckpt.n_vertices, 70);
        let mut fresh = SymbolTable::new();
        fresh.intern("b"); // different intern order than the writer
        let got = ckpt.to_graph(&mut fresh);
        assert_eq!(got.n_vertices(), 70);
        assert_eq!(got.n_edges(), graph.n_edges());
        for (sym, name) in [
            (fresh.get("a").unwrap(), "a"),
            (fresh.get("b").unwrap(), "b"),
        ] {
            let orig = table.get(name).unwrap();
            let mut want = graph.edges_of(orig).to_vec();
            let mut have = got.edges_of(sym).to_vec();
            want.sort_unstable();
            have.sort_unstable();
            assert_eq!(want, have, "label {name}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_checkpoints_are_typed_errors() {
        let dir = tmpdir("damage");
        let mut table = SymbolTable::new();
        let graph = sample_graph(&mut table);
        let path = write_checkpoint(&dir, 1, &graph, &table).unwrap();
        let full = fs::read(&path).unwrap();
        // Truncation at every prefix length fails cleanly.
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(matches!(
                read_checkpoint(&path),
                Err(DurableError::Corrupt { .. })
            ));
        }
        // A flipped payload byte is caught by the checksum.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x04;
        fs::write(&path, &flipped).unwrap();
        match read_checkpoint(&path) {
            Err(DurableError::Corrupt { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
