//! Segmented write-ahead log for [`UpdateBatch`]es.
//!
//! ## On-disk format
//!
//! A log is a directory of segment files named `wal-NNNNNNNN.seg`,
//! numbered in creation order. Each segment starts with a 20-byte
//! header:
//!
//! ```text
//! magic   8 bytes  "SPBLAWAL"
//! format  u32 LE   FORMAT_VERSION
//! first   u64 LE   version produced by the segment's first record
//! ```
//!
//! followed by records, each:
//!
//! ```text
//! len      u32 LE   payload byte length
//! checksum u64 LE   FNV-1a over the payload bytes
//! payload  len bytes
//! ```
//!
//! The payload encodes one applied batch:
//!
//! ```text
//! version   u64 LE            version this batch produced
//! n_labels  u16 LE            label-name dictionary size
//! labels    n_labels × { u16 LE len, utf-8 bytes }
//! n_ops     u32 LE
//! ops       n_ops × { u8 tag (0=insert, 1=delete),
//!                     u16 LE label index, u32 LE from, u32 LE to }
//! ```
//!
//! Label *names* — not `Symbol` ids — go on disk, so replay survives a
//! process restart that re-interns the vocabulary in a different order.
//!
//! ## Crash semantics
//!
//! [`Wal::append`] writes the full record then fsyncs (`sync_data`);
//! [`Wal::append_nosync`] defers the fsync until the next
//! [`Wal::flush`] — the group-commit path, where one `sync_data`
//! covers a batch of records and only flushed records are
//! *acknowledged* (see [`crate::DurableLog`]). After a crash — process
//! *or* machine — every fsynced record is intact and the damage is
//! confined to the unsynced tail of the *last* segment: missing
//! records, or one torn record at the new end. [`replay`] treats
//! exactly that case as a clean end-of-log (reporting
//! `torn_tail = true`), and [`Wal::open`] trims the torn bytes back to
//! the last intact record boundary before appending, so post-restart
//! records never land behind garbage that a later replay would stop
//! at. A short record anywhere else, a checksum mismatch, a bad
//! header, or a version gap is a typed [`DurableError::Corrupt`].
//! Every fsync that covers records is counted in
//! `spbla_wal_fsyncs_total` — the group-commit ablation's currency.
//!
//! ## Compaction
//!
//! [`compact`] garbage-collects whole segments already folded into a
//! checkpoint: segment *k* is deletable exactly when the *next*
//! segment's header says its first record is at or below
//! `checkpoint_version + 1` — every record in *k* is then covered by
//! the checkpoint. The newest segment is never touched (the append
//! path owns its file handle), and deletion is whole-file only, so the
//! committed prefix of every surviving segment stays intact.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use spbla_lang::SymbolTable;
use spbla_obs::metrics_global;
use spbla_stream::{UpdateBatch, UpdateOp};

use crate::error::{DurableError, Result};

/// Current segment format version.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"SPBLAWAL";
const HEADER_LEN: usize = 8 + 4 + 8;
const RECORD_HEADER_LEN: usize = 4 + 8;

/// FNV-1a over a byte slice — the same constants as
/// [`spbla_stream::checksum_pairs`], applied to raw record payloads.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_err(path: &Path, op: &'static str, error: std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.display().to_string(),
        op,
        error,
    }
}

fn corrupt(path: &Path, offset: u64, reason: impl Into<String>) -> DurableError {
    DurableError::Corrupt {
        path: path.display().to_string(),
        offset,
        reason: reason.into(),
    }
}

fn fits(what: &'static str, len: usize, max: usize) -> Result<()> {
    if len > max {
        return Err(DurableError::TooLarge { what, len, max });
    }
    Ok(())
}

/// Fsync a directory so renames / new files under it survive power
/// loss, not just process death.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err(dir, "sync_dir", e))
}

/// Encode one batch payload. `table` maps a [`spbla_lang::Symbol`] to
/// its name; the encoder builds the per-record label dictionary. A
/// value wider than its on-disk field is a typed
/// [`DurableError::TooLarge`], never a silent truncation.
pub fn encode_record(version: u64, batch: &UpdateBatch, table: &SymbolTable) -> Result<Vec<u8>> {
    let labels = batch.labels();
    fits("label dictionary", labels.len(), u16::MAX as usize)?;
    fits("batch ops", batch.len(), u32::MAX as usize)?;
    let mut out = Vec::with_capacity(16 + labels.len() * 8 + batch.len() * 11);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(labels.len() as u16).to_le_bytes());
    for &l in &labels {
        let name = table.name(l).as_bytes();
        fits("label name", name.len(), u16::MAX as usize)?;
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
    }
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for op in batch.ops() {
        let (tag, u, l, v) = match *op {
            UpdateOp::Insert(u, l, v) => (0u8, u, l, v),
            UpdateOp::Delete(u, l, v) => (1u8, u, l, v),
        };
        let idx = labels.binary_search(&l).expect("label in dictionary") as u16;
        out.push(tag);
        out.extend_from_slice(&idx.to_le_bytes());
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok(out)
}

/// A batch decoded from the log, with labels still as names; call
/// [`DecodedRecord::to_batch`] to intern them against a live table.
#[derive(Debug, Clone)]
pub struct DecodedRecord {
    /// Version this batch produced when it was first applied.
    pub version: u64,
    /// Operations with labels resolved to the record's name dictionary.
    pub ops: Vec<(bool, u32, String, u32)>,
}

impl DecodedRecord {
    /// Re-intern the record's label names and rebuild the batch.
    pub fn to_batch(&self, table: &mut SymbolTable) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for (insert, u, name, v) in &self.ops {
            let l = table.intern(name);
            if *insert {
                batch.insert(*u, l, *v);
            } else {
                batch.delete(*u, l, *v);
            }
        }
        batch
    }
}

struct Cur<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }
    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .map(|b| u16::from_le_bytes(b.try_into().unwrap()))
    }
    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }
}

fn decode_payload(path: &Path, offset: u64, payload: &[u8]) -> Result<DecodedRecord> {
    let bad = |reason: &str| corrupt(path, offset, format!("record payload: {reason}"));
    let mut cur = Cur {
        bytes: payload,
        at: 0,
    };
    let version = cur.u64().ok_or_else(|| bad("truncated version"))?;
    let n_labels = cur.u16().ok_or_else(|| bad("truncated label count"))?;
    let mut labels = Vec::with_capacity(n_labels as usize);
    for _ in 0..n_labels {
        let len = cur.u16().ok_or_else(|| bad("truncated label length"))?;
        let raw = cur
            .take(len as usize)
            .ok_or_else(|| bad("truncated label name"))?;
        let name = std::str::from_utf8(raw).map_err(|_| bad("label name is not utf-8"))?;
        labels.push(name.to_string());
    }
    let n_ops = cur.u32().ok_or_else(|| bad("truncated op count"))?;
    let mut ops = Vec::with_capacity(n_ops as usize);
    for _ in 0..n_ops {
        let tag = cur.take(1).ok_or_else(|| bad("truncated op tag"))?[0];
        if tag > 1 {
            return Err(bad("unknown op tag"));
        }
        let idx = cur.u16().ok_or_else(|| bad("truncated label index"))?;
        let name = labels
            .get(idx as usize)
            .ok_or_else(|| bad("label index out of range"))?
            .clone();
        let from = cur.u32().ok_or_else(|| bad("truncated edge source"))?;
        let to = cur.u32().ok_or_else(|| bad("truncated edge target"))?;
        ops.push((tag == 0, from, name, to));
    }
    if cur.at != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(DecodedRecord { version, ops })
}

fn segment_name(seq: u64) -> String {
    format!("wal-{seq:08}.seg")
}

fn segment_seq(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("wal-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// The intact portion of one segment, from a checksum-verified record
/// walk — the single framing authority shared by [`replay`] (which
/// decodes the payloads) and [`Wal::open`] (which trims the file back
/// to `valid_len`).
struct SegmentWalk {
    /// `(record offset, payload range)` of each intact record, in order.
    payloads: Vec<(u64, std::ops::Range<usize>)>,
    /// Byte offset one past the last intact record (`HEADER_LEN` when
    /// the segment holds none).
    valid_len: usize,
    /// Whether bytes past `valid_len` form a torn (incomplete) record.
    torn: bool,
}

/// Walk one segment's bytes. `Ok(None)` means the file is shorter than
/// a header but is a prefix of a valid one — the artifact of a crash
/// mid-rotation; it holds no records. Bad magic, an unsupported format,
/// or a record checksum mismatch is [`DurableError::Corrupt`]; whether
/// a torn tail is acceptable is the *caller's* call (it depends on the
/// segment being last).
fn walk_segment(path: &Path, bytes: &[u8]) -> Result<Option<SegmentWalk>> {
    if bytes.len() < HEADER_LEN {
        if MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
            return Ok(None);
        }
        return Err(corrupt(path, 0, "segment shorter than header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(corrupt(path, 0, "bad magic"));
    }
    let format = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if format != FORMAT_VERSION {
        return Err(corrupt(path, 8, format!("unsupported format {format}")));
    }
    let mut payloads = Vec::new();
    let mut at = HEADER_LEN;
    let mut torn = false;
    while at < bytes.len() {
        let header_end = at + RECORD_HEADER_LEN;
        if header_end > bytes.len() {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[at + 4..header_end].try_into().unwrap());
        let payload_end = match header_end.checked_add(len) {
            Some(end) if end <= bytes.len() => end,
            _ => {
                torn = true;
                break;
            }
        };
        if fnv1a(&bytes[header_end..payload_end]) != checksum {
            return Err(corrupt(path, at as u64, "record checksum mismatch"));
        }
        payloads.push((at as u64, header_end..payload_end));
        at = payload_end;
    }
    Ok(Some(SegmentWalk {
        payloads,
        valid_len: at,
        torn,
    }))
}

/// List segment files in a log directory, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut segs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, "read_dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, "read_dir", e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("wal-") && name.ends_with(".seg") {
            segs.push(entry.path());
        }
    }
    segs.sort();
    Ok(segs)
}

/// Delete whole segments whose every record is already folded into a
/// checkpoint at `checkpoint_version`. Segment *k* qualifies exactly
/// when the *next* segment's header records a first version at or
/// below `checkpoint_version + 1` (segment *k*'s records all precede
/// it). The newest segment is never deleted — the append side owns its
/// file handle — and a next segment whose header is unreadable (a
/// crash artifact only legal at the tail) conservatively ends the
/// sweep. Returns the number of segments removed.
///
/// After compaction, recovery from a checkpoint *older* than
/// `checkpoint_version` may find its tail gone; [`crate::recover`]
/// detects that gap and reports it as a typed
/// [`DurableError::Corrupt`], never a silently shortened history.
pub fn compact(dir: &Path, checkpoint_version: u64) -> Result<usize> {
    let segs = list_segments(dir)?;
    let mut removed = 0usize;
    for pair in segs.windows(2) {
        let (seg, next) = (&pair[0], &pair[1]);
        let mut header = [0u8; HEADER_LEN];
        let readable = File::open(next)
            .and_then(|mut f| f.read_exact(&mut header))
            .is_ok();
        if !readable || &header[..8] != MAGIC {
            break;
        }
        let next_first = u64::from_le_bytes(header[12..20].try_into().unwrap());
        if next_first > checkpoint_version + 1 {
            break;
        }
        fs::remove_file(seg).map_err(|e| io_err(seg, "remove", e))?;
        removed += 1;
    }
    if removed > 0 {
        sync_dir(dir)?;
        metrics_global()
            .counter("spbla_wal_compacted_segments_total")
            .inc(removed as u64);
    }
    Ok(removed)
}

/// Everything [`replay`] recovered from a log directory.
#[derive(Debug, Default)]
pub struct Replayed {
    /// Records in version order.
    pub records: Vec<DecodedRecord>,
    /// Whether the last segment ended in a torn record (expected crash
    /// artifact; the intact prefix above is still valid).
    pub torn_tail: bool,
    /// Number of segment files read.
    pub segments: usize,
}

/// Read every record in the log directory, in order. Only records with
/// `version > after_version` are kept (pass `0` for everything — the
/// filter is how recovery skips records already folded into a
/// checkpoint). A torn record at the tail of the final segment ends the
/// replay cleanly; any other malformation is a typed error.
pub fn replay(dir: &Path, after_version: u64) -> Result<Replayed> {
    let segs = list_segments(dir)?;
    let mut out = Replayed {
        segments: segs.len(),
        ..Replayed::default()
    };
    let mut expect: Option<u64> = None;
    for (si, seg) in segs.iter().enumerate() {
        let last_segment = si + 1 == segs.len();
        let mut bytes = Vec::new();
        File::open(seg)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| io_err(seg, "read", e))?;
        let walk = match walk_segment(seg, &bytes)? {
            Some(walk) => walk,
            None => {
                // A crash during rotation can leave a partially written
                // header at the tail of the final segment; that is a
                // clean torn tail, not corruption. Anywhere else it is.
                if last_segment {
                    out.torn_tail = true;
                    return Ok(out);
                }
                return Err(corrupt(seg, 0, "segment shorter than header"));
            }
        };
        for (offset, range) in &walk.payloads {
            let record = decode_payload(seg, *offset, &bytes[range.clone()])?;
            if let Some(e) = expect {
                if record.version != e {
                    return Err(corrupt(
                        seg,
                        *offset,
                        format!("version gap: expected {e}, found {}", record.version),
                    ));
                }
            }
            expect = Some(record.version + 1);
            if record.version > after_version {
                out.records.push(record);
            }
        }
        if walk.torn {
            if last_segment {
                out.torn_tail = true;
                return Ok(out);
            }
            return Err(corrupt(seg, walk.valid_len as u64, "torn record mid-log"));
        }
    }
    Ok(out)
}

/// Append side of the log: rotates segments at a size threshold and
/// flushes every record before reporting success.
pub struct Wal {
    dir: PathBuf,
    segment_bytes: usize,
    active: Option<(PathBuf, File, usize)>,
    next_seq: u64,
    /// Records written to the active segment but not yet covered by an
    /// fsync — the group-commit window. These are NOT durable until
    /// [`Wal::flush`].
    pending: usize,
    /// Record-covering fsyncs issued through this handle (the
    /// per-instance view of `spbla_wal_fsyncs_total`, for ablations
    /// that compare two logs in one process).
    fsyncs: u64,
}

impl Wal {
    /// Open (or create) the log under `dir`, appending to the newest
    /// existing segment. `segment_bytes` is the rotation threshold.
    ///
    /// The newest segment gets the same checksum-verified record walk
    /// replay uses: a torn record at its tail (the crash artifact) is
    /// trimmed off with `set_len` so new appends land at the last
    /// intact boundary — never after garbage that would make a later
    /// replay stop early and silently drop acknowledged post-restart
    /// records. A segment whose *header* is torn (crash mid-rotation)
    /// holds no records and is removed. Any other damage is a typed
    /// [`DurableError::Corrupt`].
    pub fn open(dir: &Path, segment_bytes: usize) -> Result<Wal> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create_dir", e))?;
        let segs = list_segments(dir)?;
        // One past the highest existing sequence number — never a file
        // recount, which after pruning would re-derive a live segment's
        // name and truncate committed records.
        let next_seq = segs
            .iter()
            .filter_map(|p| segment_seq(p))
            .max()
            .map_or(0, |s| s + 1);
        let active = match segs.last() {
            Some(path) => {
                let mut bytes = Vec::new();
                File::open(path)
                    .and_then(|mut f| f.read_to_end(&mut bytes))
                    .map_err(|e| io_err(path, "read", e))?;
                match walk_segment(path, &bytes)? {
                    None => {
                        fs::remove_file(path).map_err(|e| io_err(path, "remove", e))?;
                        sync_dir(dir)?;
                        None
                    }
                    Some(walk) => {
                        let file = OpenOptions::new()
                            .append(true)
                            .open(path)
                            .map_err(|e| io_err(path, "open", e))?;
                        if walk.torn {
                            file.set_len(walk.valid_len as u64)
                                .map_err(|e| io_err(path, "truncate", e))?;
                            file.sync_data().map_err(|e| io_err(path, "sync", e))?;
                            metrics_global()
                                .counter("spbla_wal_tail_truncations_total")
                                .inc(1);
                        }
                        Some((path.clone(), file, walk.valid_len))
                    }
                }
            }
            None => None,
        };
        Ok(Wal {
            dir: dir.to_path_buf(),
            segment_bytes,
            active,
            next_seq,
            pending: 0,
            fsyncs: 0,
        })
    }

    /// Sequence number the next rotation will use — equal to the number
    /// of segment files ever created when none have been pruned.
    pub fn segments(&self) -> u64 {
        self.next_seq
    }

    /// Records written but not yet made durable by a flush.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Record-covering fsyncs issued through this handle since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    fn rotate(&mut self, first_version: u64) -> Result<()> {
        let path = self.dir.join(segment_name(self.next_seq));
        // create_new: a sequence collision (say, a manually restored
        // segment) must error, never truncate committed records.
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err(&path, "create", e))?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&first_version.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| io_err(&path, "append", e))?;
        sync_dir(&self.dir)?;
        self.next_seq += 1;
        self.active = Some((path, file, HEADER_LEN));
        metrics_global().counter("spbla_wal_segments_total").inc(1);
        Ok(())
    }

    /// Append the batch that produced `version`, rotating first if the
    /// active segment is full. Fsyncs before returning: the record is
    /// durable — acknowledged — when this returns.
    pub fn append(&mut self, version: u64, batch: &UpdateBatch, table: &SymbolTable) -> Result<()> {
        self.append_nosync(version, batch, table)?;
        self.flush()
    }

    /// Append without the covering fsync — the group-commit path. The
    /// record is on the file but NOT durable until the next
    /// [`Wal::flush`]; a crash in between may lose it (or leave it
    /// torn), which is exactly the unacknowledged-tail loss the
    /// recovery contract allows. Rotation flushes the outgoing segment
    /// first, so pending records never span a segment boundary.
    pub fn append_nosync(
        &mut self,
        version: u64,
        batch: &UpdateBatch,
        table: &SymbolTable,
    ) -> Result<()> {
        let payload = encode_record(version, batch, table)?;
        let record_len = RECORD_HEADER_LEN + payload.len();
        let needs_rotation = match &self.active {
            Some((_, _, len)) => *len + record_len > self.segment_bytes && *len > HEADER_LEN,
            None => true,
        };
        if needs_rotation {
            // The outgoing segment's file handle is dropped by the
            // rotation; its pending records must be durable first.
            self.flush()?;
            self.rotate(version)?;
        }
        let (path, file, len) = self.active.as_mut().expect("active segment after rotate");
        let mut rec = Vec::with_capacity(record_len);
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        rec.extend_from_slice(&payload);
        file.write_all(&rec)
            .map_err(|e| io_err(path, "append", e))?;
        *len += rec.len();
        self.pending += 1;
        let m = metrics_global();
        m.counter("spbla_wal_records_total").inc(1);
        m.counter("spbla_wal_bytes_total").inc(rec.len() as u64);
        Ok(())
    }

    /// Make every pending record durable with one `sync_data`. A no-op
    /// when nothing is pending, so the fsync counter measures real
    /// durability work, not call sites.
    pub fn flush(&mut self) -> Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        let (path, file, _) = self
            .active
            .as_mut()
            .expect("pending records imply a segment");
        // sync_data, not BufWriter-style flush: a File has no userspace
        // buffer, so the durability the caller is acknowledging needs
        // the fsync.
        file.sync_data().map_err(|e| io_err(path, "sync", e))?;
        self.pending = 0;
        self.fsyncs += 1;
        metrics_global().counter("spbla_wal_fsyncs_total").inc(1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spbla-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_batches(table: &mut SymbolTable, n: usize) -> Vec<UpdateBatch> {
        let a = table.intern("a");
        let b = table.intern("edge-β");
        (0..n)
            .map(|k| {
                let mut batch = UpdateBatch::new();
                batch.insert(k as u32, a, k as u32 + 1);
                if k % 2 == 0 {
                    batch.delete(k as u32, b, k as u32 + 2);
                }
                batch
            })
            .collect()
    }

    #[test]
    fn append_replay_round_trips_across_reintern() {
        let dir = tmpdir("roundtrip");
        let mut table = SymbolTable::new();
        let batches = sample_batches(&mut table, 5);
        {
            let mut wal = Wal::open(&dir, 64).unwrap(); // tiny: forces rotation
            for (k, b) in batches.iter().enumerate() {
                wal.append(k as u64 + 1, b, &table).unwrap();
            }
            assert!(wal.segments() > 1, "rotation should have kicked in");
        }
        // Replay into a table interned in a different order.
        let mut fresh = SymbolTable::new();
        fresh.intern("edge-β");
        let replayed = replay(&dir, 0).unwrap();
        assert!(!replayed.torn_tail);
        assert_eq!(replayed.records.len(), 5);
        for (k, rec) in replayed.records.iter().enumerate() {
            assert_eq!(rec.version, k as u64 + 1);
            let got = rec.to_batch(&mut fresh);
            assert_eq!(got.len(), batches[k].len());
            assert_eq!(got.net_per_label().len(), batches[k].net_per_label().len());
        }
        // The filter skips records at or below the checkpoint version.
        assert_eq!(replay(&dir, 3).unwrap().records.len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_recovers_prefix_and_corruption_is_typed() {
        let dir = tmpdir("torn");
        let mut table = SymbolTable::new();
        let batches = sample_batches(&mut table, 3);
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        for (k, b) in batches.iter().enumerate() {
            wal.append(k as u64 + 1, b, &table).unwrap();
        }
        drop(wal);
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&seg).unwrap();
        // Record end offsets, computed from the on-disk lengths.
        let mut bounds = vec![HEADER_LEN];
        let mut at = HEADER_LEN;
        while at < full.len() {
            let len = u32::from_le_bytes(full[at..at + 4].try_into().unwrap()) as usize;
            at += RECORD_HEADER_LEN + len;
            bounds.push(at);
        }
        // Truncating at every byte yields exactly the intact prefix; a
        // cut between boundaries is flagged as a torn tail.
        for cut in HEADER_LEN..full.len() {
            fs::write(&seg, &full[..cut]).unwrap();
            let r = replay(&dir, 0).unwrap();
            let intact = bounds
                .iter()
                .filter(|&&b| b > HEADER_LEN && b <= cut)
                .count();
            assert_eq!(r.records.len(), intact, "cut at {cut}");
            assert_eq!(r.torn_tail, !bounds.contains(&cut), "cut at {cut}");
        }
        // Flipping a payload byte is a checksum error, not a bad decode.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&seg, &flipped).unwrap();
        match replay(&dir, 0) {
            Err(DurableError::Corrupt { reason, .. }) => {
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_trims_torn_tail_and_keeps_post_restart_records() {
        let dir = tmpdir("reopen");
        let mut table = SymbolTable::new();
        let batches = sample_batches(&mut table, 3);
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        for (k, b) in batches.iter().enumerate() {
            wal.append(k as u64 + 1, b, &table).unwrap();
        }
        drop(wal);
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let full = fs::read(&seg).unwrap();
        // Tear the last record: cut one byte short of the file end.
        fs::write(&seg, &full[..full.len() - 1]).unwrap();
        assert!(replay(&dir, 0).unwrap().torn_tail);
        // Restart: open must trim back to the record-2 boundary so the
        // post-restart appends are replayable, not stranded after the
        // tear.
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        for (k, b) in batches.iter().enumerate().skip(2) {
            wal.append(k as u64 + 1, b, &table).unwrap();
        }
        wal.append(4, &batches[0], &table).unwrap();
        drop(wal);
        let replayed = replay(&dir, 0).unwrap();
        assert!(!replayed.torn_tail, "tear must be gone after reopen");
        let versions: Vec<u64> = replayed.records.iter().map(|r| r.version).collect();
        assert_eq!(versions, vec![1, 2, 3, 4]);
        // A tear inside the segment *header* (crash mid-rotation) holds
        // no records; reopen drops the fragment and rotates fresh.
        let frag = dir.join(segment_name(9));
        fs::write(&frag, &MAGIC[..5]).unwrap();
        let mut wal = Wal::open(&dir, 1 << 20).unwrap();
        assert!(!frag.exists(), "torn-header fragment should be removed");
        wal.append(5, &batches[1], &table).unwrap();
        assert_eq!(replay(&dir, 0).unwrap().records.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_numbering_survives_pruned_segments() {
        let dir = tmpdir("pruned");
        let mut table = SymbolTable::new();
        let batches = sample_batches(&mut table, 6);
        let mut wal = Wal::open(&dir, 64).unwrap(); // tiny: one record per segment
        for (k, b) in batches.iter().enumerate() {
            wal.append(k as u64 + 1, b, &table).unwrap();
        }
        drop(wal);
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3, "need several segments to prune");
        // Prune the oldest (as a checkpoint-based GC would) and
        // remember the newest survivor's bytes.
        fs::remove_file(&segs[0]).unwrap();
        let survivor = segs.last().unwrap().clone();
        let survivor_bytes = fs::read(&survivor).unwrap();
        let high = segment_seq(&survivor).unwrap();
        // Reopen and append until a rotation happens: the new segment
        // must continue past the highest sequence, not recount files
        // and truncate an existing one.
        let mut wal = Wal::open(&dir, 64).unwrap();
        assert_eq!(wal.segments(), high + 1);
        for (k, b) in batches.iter().enumerate() {
            wal.append((6 + k) as u64 + 1, b, &table).unwrap();
        }
        assert!(dir.join(segment_name(high + 1)).exists());
        assert_eq!(
            fs::read(&survivor).unwrap()[..survivor_bytes.len()],
            survivor_bytes,
            "pre-existing segment must keep its committed prefix"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_drops_only_fully_checkpointed_segments() {
        let dir = tmpdir("compact");
        let mut table = SymbolTable::new();
        let batches = sample_batches(&mut table, 6);
        let mut wal = Wal::open(&dir, 64).unwrap(); // tiny: one record per segment
        for (k, b) in batches.iter().enumerate() {
            wal.append(k as u64 + 1, b, &table).unwrap();
        }
        drop(wal);
        assert_eq!(list_segments(&dir).unwrap().len(), 6);
        // Checkpoint at version 3: segments holding versions 1..=3 go,
        // the rest stay, and replay past the checkpoint is unaffected.
        assert_eq!(compact(&dir, 3).unwrap(), 3);
        assert_eq!(list_segments(&dir).unwrap().len(), 3);
        let tail: Vec<u64> = replay(&dir, 3)
            .unwrap()
            .records
            .iter()
            .map(|r| r.version)
            .collect();
        assert_eq!(tail, vec![4, 5, 6]);
        // Compacting again at the same version is a no-op.
        assert_eq!(compact(&dir, 3).unwrap(), 0);
        // A checkpoint at the head folds everything, but the newest
        // segment must survive for the append side.
        assert_eq!(compact(&dir, 6).unwrap(), 2);
        let survivors = list_segments(&dir).unwrap();
        assert_eq!(survivors.len(), 1);
        assert_eq!(replay(&dir, 6).unwrap().records.len(), 0);
        // Appends keep working after compaction, numbering past the
        // pruned range.
        let mut wal = Wal::open(&dir, 64).unwrap();
        wal.append(7, &batches[0], &table).unwrap();
        let versions: Vec<u64> = replay(&dir, 6)
            .unwrap()
            .records
            .iter()
            .map(|r| r.version)
            .collect();
        assert_eq!(versions, vec![7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_stops_at_unreadable_next_header() {
        let dir = tmpdir("compact-torn");
        let mut table = SymbolTable::new();
        let batches = sample_batches(&mut table, 3);
        let mut wal = Wal::open(&dir, 64).unwrap();
        for (k, b) in batches.iter().enumerate() {
            wal.append(k as u64 + 1, b, &table).unwrap();
        }
        drop(wal);
        // Tear the *second* segment's header down to a magic prefix:
        // its first-version field is unreadable, so the sweep must keep
        // the first segment rather than guess.
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        fs::write(&segs[1], &MAGIC[..5]).unwrap();
        assert_eq!(compact(&dir, 3).unwrap(), 0);
        assert_eq!(list_segments(&dir).unwrap().len(), segs.len());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_fields_are_typed_errors_not_truncation() {
        let mut table = SymbolTable::new();
        let long = table.intern(&"x".repeat(u16::MAX as usize + 1));
        let mut batch = UpdateBatch::new();
        batch.insert(0, long, 1);
        match encode_record(1, &batch, &table) {
            Err(DurableError::TooLarge { what, len, max }) => {
                assert_eq!(what, "label name");
                assert_eq!(len, u16::MAX as usize + 1);
                assert_eq!(max, u16::MAX as usize);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}
