//! Open-loop load generation against the serving engine.
//!
//! The closed-loop driver everyone writes first (submit, wait, repeat)
//! cannot see queueing collapse: when the server slows down, the driver
//! slows down with it, and the measured latencies silently exclude the
//! waiting the server *caused* — coordinated omission. This harness is
//! open-loop: arrival times are drawn up front from a seeded Poisson
//! process, every request is submitted at its scheduled instant
//! whether or not earlier ones finished, and a rejected admission is
//! *counted*, never retried or waited on. Latency is charged from the
//! scheduled arrival (schedule slip included), so a backed-up engine
//! pays for the backlog it created.
//!
//! Requests are split across the engine's two QoS admission tiers
//! ([`QosTier::Interactive`] / [`QosTier::Batch`]) with independent
//! deadlines, and [`saturation_sweep`] walks an offered-rate ladder
//! until the engine stops keeping up.
//!
//! A run can mix writes into the arrival stream
//! ([`LoadConfig::write_fraction`], [`run_open_loop_mixed`]): write
//! arrivals are [`Query::Update`] batches submitted under the batch
//! tier on the same open-loop schedule, and their outcomes are
//! reported as a third stats bucket ([`LoadReport::writes`]) so read
//! SLOs and write throughput are visible separately.

use std::time::{Duration, Instant};

use spbla_engine::{Engine, EngineError, QosTier, Query, Ticket};
use spbla_lang::Symbol;
use spbla_stream::UpdateBatch;

/// Knobs for one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Total arrivals to schedule.
    pub requests: usize,
    /// RNG seed: the whole arrival schedule (times, tiers, query
    /// choices) is a pure function of this.
    pub seed: u64,
    /// Fraction of arrivals submitted under the interactive tier.
    pub interactive_fraction: f64,
    /// Deadline for interactive requests, if any.
    pub interactive_deadline_ms: Option<u64>,
    /// Deadline for batch requests, if any.
    pub batch_deadline_ms: Option<u64>,
    /// Fraction of arrivals that are write batches instead of reads.
    /// Writes ride the batch admission tier (they mutate shared state,
    /// so they never preempt interactive reads) and are reported in
    /// [`LoadReport::writes`]. 0 keeps the run read-only and the
    /// schedule bit-identical to earlier versions of the harness.
    pub write_fraction: f64,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            rate_per_sec: 200.0,
            requests: 200,
            seed: 0x5eed_10ad,
            interactive_fraction: 0.3,
            interactive_deadline_ms: Some(250),
            batch_deadline_ms: None,
            write_fraction: 0.0,
        }
    }
}

/// One scheduled arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Offset from the run's start.
    pub at: Duration,
    /// Admission tier.
    pub tier: QosTier,
    /// Index into the caller's query template list — the read templates
    /// for a read arrival, the write templates for a write arrival.
    pub query: usize,
    /// Whether this arrival submits a write batch.
    pub write: bool,
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }
    fn next_u64(&mut self) -> u64 {
        let mut s = self.0;
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        self.0 = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform in (0, 1] — the open end at 0 keeps `ln` finite.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }
}

/// The deterministic arrival schedule for a config: exponential
/// inter-arrival gaps (inverse-CDF over the seeded generator), tier and
/// query choice drawn per arrival. Pure in `config` — two calls always
/// agree, which is what makes runs reproducible and comparable.
pub fn arrival_schedule(config: &LoadConfig, n_queries: usize) -> Vec<Arrival> {
    arrival_schedule_mixed(config, n_queries, 0)
}

/// [`arrival_schedule`] with write arrivals mixed in: when
/// [`LoadConfig::write_fraction`] is positive and `n_writes > 0`, each
/// arrival first draws read-vs-write; writes are pinned to the batch
/// tier and index the write template list. With the mix disabled the
/// generator consumes exactly the historical draw sequence, so
/// read-only schedules stay bit-identical across versions.
pub fn arrival_schedule_mixed(
    config: &LoadConfig,
    n_queries: usize,
    n_writes: usize,
) -> Vec<Arrival> {
    assert!(config.rate_per_sec > 0.0, "arrival rate must be positive");
    assert!(n_queries > 0, "need at least one query template");
    let mix = config.write_fraction > 0.0 && n_writes > 0;
    let mut rng = XorShift::new(config.seed);
    let mut at = 0.0f64;
    (0..config.requests)
        .map(|_| {
            at += -rng.next_unit().ln() / config.rate_per_sec;
            let write = mix && rng.next_unit() <= config.write_fraction;
            if write {
                Arrival {
                    at: Duration::from_secs_f64(at),
                    tier: QosTier::Batch,
                    query: (rng.next_u64() % n_writes as u64) as usize,
                    write: true,
                }
            } else {
                let tier = if rng.next_unit() <= config.interactive_fraction {
                    QosTier::Interactive
                } else {
                    QosTier::Batch
                };
                let query = (rng.next_u64() % n_queries as u64) as usize;
                Arrival {
                    at: Duration::from_secs_f64(at),
                    tier,
                    query,
                    write: false,
                }
            }
        })
        .collect()
}

/// Deterministic write templates for a mixed run: `count` update
/// batches of `ops_per_batch` operations each over `n_vertices`
/// vertices under one `label`, drawn from `seed`. Roughly 3:1
/// inserts to deletes so the graph churns without emptying; every
/// endpoint stays in bounds, so the only way a write fails is the
/// serving path itself.
pub fn write_query_templates(
    label: Symbol,
    n_vertices: u32,
    ops_per_batch: usize,
    count: usize,
    seed: u64,
) -> Vec<Query> {
    assert!(
        n_vertices >= 2,
        "write templates need at least two vertices"
    );
    let mut rng = XorShift::new(seed);
    (0..count)
        .map(|_| {
            let mut batch = UpdateBatch::new();
            for _ in 0..ops_per_batch.max(1) {
                let u = (rng.next_u64() % n_vertices as u64) as u32;
                let v = (rng.next_u64() % n_vertices as u64) as u32;
                if rng.next_u64().is_multiple_of(4) {
                    batch.delete(u, label, v);
                } else {
                    batch.insert(u, label, v);
                }
            }
            Query::Update(batch)
        })
        .collect()
}

/// Per-tier outcome counts and latency percentiles (microseconds).
#[derive(Debug, Clone, Default)]
pub struct TierStats {
    /// Arrivals scheduled under this tier.
    pub offered: u64,
    /// Arrivals the engine admitted.
    pub admitted: u64,
    /// Admitted requests that completed with an answer.
    pub completed: u64,
    /// Arrivals bounced by admission control.
    pub rejected: u64,
    /// Admitted requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Admitted requests that failed any other way.
    pub failed: u64,
    /// Median completion latency, µs (scheduled arrival → completion).
    pub p50_us: u64,
    /// 95th-percentile latency, µs.
    pub p95_us: u64,
    /// 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Worst observed latency, µs.
    pub max_us: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

impl TierStats {
    fn finish(&mut self, mut samples: Vec<u64>) {
        samples.sort_unstable();
        self.p50_us = percentile(&samples, 0.50);
        self.p95_us = percentile(&samples, 0.95);
        self.p99_us = percentile(&samples, 0.99);
        self.max_us = samples.last().copied().unwrap_or(0);
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Offered rate the schedule was drawn at, req/s.
    pub offered_rate: f64,
    /// Completions per second of wall time.
    pub achieved_rate: f64,
    /// Wall time from first scheduled arrival to last completion.
    pub wall_ms: u64,
    /// Interactive-tier read outcomes.
    pub interactive: TierStats,
    /// Batch-tier read outcomes.
    pub batch: TierStats,
    /// Write-batch outcomes (submitted under the batch tier, tracked
    /// separately so the read SLOs are not diluted by write latency).
    pub writes: TierStats,
}

impl LoadReport {
    /// Total arrivals across tiers, writes included.
    pub fn offered(&self) -> u64 {
        self.interactive.offered + self.batch.offered + self.writes.offered
    }

    /// Total rejections across tiers, writes included.
    pub fn rejected(&self) -> u64 {
        self.interactive.rejected + self.batch.rejected + self.writes.rejected
    }

    /// Total completions across tiers, writes included.
    pub fn completed(&self) -> u64 {
        self.interactive.completed + self.batch.completed + self.writes.completed
    }

    /// Whether this run shows the engine failing to keep up with the
    /// offered rate. In an open loop the collapse signals are requests
    /// that *arrived* but never produced an answer — bounced by
    /// admission, dead on deadline, or failed — so saturation is
    /// declared when completions fall more than 5 % short of arrivals.
    pub fn saturated(&self) -> bool {
        let total = self.offered().max(1);
        (self.completed() as f64) < 0.95 * total as f64
    }
}

/// Run one open-loop schedule against `engine`. `queries` are the
/// templates arrivals draw from (cloned per submission); all target the
/// named catalog graph.
pub fn run_open_loop(
    engine: &Engine,
    graph: &str,
    queries: &[Query],
    config: &LoadConfig,
) -> LoadReport {
    run_open_loop_mixed(engine, graph, queries, &[], config)
}

/// [`run_open_loop`] with write templates mixed in on the same
/// schedule: write arrivals (see [`LoadConfig::write_fraction`]) clone
/// from `writes` and are submitted under the batch tier; their
/// outcomes land in [`LoadReport::writes`]. An empty `writes` slice
/// degenerates to the read-only run.
pub fn run_open_loop_mixed(
    engine: &Engine,
    graph: &str,
    queries: &[Query],
    writes: &[Query],
    config: &LoadConfig,
) -> LoadReport {
    let schedule = arrival_schedule_mixed(config, queries.len(), writes.len());
    let mut interactive = TierStats::default();
    let mut batch = TierStats::default();
    let mut write_stats = TierStats::default();
    let start = Instant::now();
    // Dispatch phase: submit on schedule, never block on completions.
    let mut in_flight: Vec<(usize, Ticket, Duration)> = Vec::with_capacity(schedule.len());
    for (i, arrival) in schedule.iter().enumerate() {
        let now = start.elapsed();
        if now < arrival.at {
            std::thread::sleep(arrival.at - now);
        }
        let slip = start.elapsed().saturating_sub(arrival.at);
        let deadline = match arrival.tier {
            QosTier::Interactive => config.interactive_deadline_ms,
            QosTier::Batch => config.batch_deadline_ms,
        }
        .map(Duration::from_millis);
        let query = if arrival.write {
            writes[arrival.query].clone()
        } else {
            queries[arrival.query].clone()
        };
        let stats = if arrival.write {
            &mut write_stats
        } else {
            match arrival.tier {
                QosTier::Interactive => &mut interactive,
                QosTier::Batch => &mut batch,
            }
        };
        stats.offered += 1;
        match engine.submit_tiered(graph, query, arrival.tier, deadline) {
            Ok(ticket) => {
                stats.admitted += 1;
                in_flight.push((i, ticket, slip));
            }
            Err(EngineError::Overloaded { .. }) => stats.rejected += 1,
            Err(_) => stats.failed += 1,
        }
    }
    // Collection phase: harvest every admitted request.
    let mut interactive_samples = Vec::new();
    let mut batch_samples = Vec::new();
    let mut write_samples = Vec::new();
    for (i, ticket, slip) in in_flight {
        let done = ticket.wait();
        let arrival = &schedule[i];
        let (stats, samples) = if arrival.write {
            (&mut write_stats, &mut write_samples)
        } else {
            match arrival.tier {
                QosTier::Interactive => (&mut interactive, &mut interactive_samples),
                QosTier::Batch => (&mut batch, &mut batch_samples),
            }
        };
        match done.result {
            Ok(_) => {
                stats.completed += 1;
                let latency = slip + done.metrics.latency;
                samples.push(latency.as_micros() as u64);
            }
            Err(EngineError::DeadlineExceeded { .. }) => stats.deadline_exceeded += 1,
            Err(_) => stats.failed += 1,
        }
    }
    let wall = start.elapsed();
    interactive.finish(interactive_samples);
    batch.finish(batch_samples);
    write_stats.finish(write_samples);
    let completed = interactive.completed + batch.completed + write_stats.completed;
    LoadReport {
        offered_rate: config.rate_per_sec,
        achieved_rate: completed as f64 / wall.as_secs_f64().max(1e-9),
        wall_ms: wall.as_millis() as u64,
        interactive,
        batch,
        writes: write_stats,
    }
}

/// One rung of a saturation sweep.
#[derive(Debug)]
pub struct SweepPoint {
    /// Offered rate at this rung, req/s.
    pub rate: f64,
    /// The run's report.
    pub report: LoadReport,
}

/// Walk an increasing offered-rate ladder and report the first rate the
/// engine could not keep up with ([`LoadReport::saturated`]), if any.
/// Each rung reuses `base` with its rate and a rung-specific seed.
/// `writes` are the update templates for a mixed run (empty for
/// read-only, see [`run_open_loop_mixed`]).
pub fn saturation_sweep(
    engine: &Engine,
    graph: &str,
    queries: &[Query],
    writes: &[Query],
    base: &LoadConfig,
    rates: &[f64],
) -> (Vec<SweepPoint>, Option<f64>) {
    let mut points = Vec::with_capacity(rates.len());
    let mut saturation = None;
    for (i, &rate) in rates.iter().enumerate() {
        let config = LoadConfig {
            rate_per_sec: rate,
            seed: base.seed.wrapping_add(i as u64),
            ..base.clone()
        };
        let report = run_open_loop_mixed(engine, graph, queries, writes, &config);
        if saturation.is_none() && report.saturated() {
            saturation = Some(rate);
        }
        points.push(SweepPoint { rate, report });
    }
    (points, saturation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_engine::EngineConfig;
    use spbla_graph::LabeledGraph;
    use spbla_multidev::DeviceGrid;

    #[test]
    fn schedule_is_deterministic_and_open_ended() {
        let config = LoadConfig {
            rate_per_sec: 500.0,
            requests: 64,
            ..LoadConfig::default()
        };
        let a = arrival_schedule(&config, 3);
        let b = arrival_schedule(&config, 3);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.iter().any(|x| x.tier == QosTier::Interactive));
        assert!(a.iter().any(|x| x.tier == QosTier::Batch));
        assert!(a.iter().any(|x| x.query != a[0].query));
        // A different seed draws a different schedule.
        let other = arrival_schedule(
            &LoadConfig {
                seed: config.seed + 1,
                ..config.clone()
            },
            3,
        );
        assert_ne!(a, other);
    }

    #[test]
    fn open_loop_counts_every_arrival() {
        let mut table = spbla_lang::SymbolTable::new();
        let a = table.intern("a");
        let graph = LabeledGraph::from_triples(32, (0..31).map(|k| (k, a, k + 1)));
        let engine = Engine::new(
            DeviceGrid::new(2),
            EngineConfig {
                queue_capacity: 8,
                ..EngineConfig::default()
            },
        );
        engine.with_symbols(|t| {
            t.intern("a");
        });
        engine.add_graph("g", graph);
        let config = LoadConfig {
            rate_per_sec: 2000.0,
            requests: 60,
            interactive_fraction: 0.5,
            interactive_deadline_ms: Some(5_000),
            batch_deadline_ms: None,
            ..LoadConfig::default()
        };
        let report = run_open_loop(&engine, "g", &[Query::Closure], &config);
        assert_eq!(report.offered(), 60);
        for tier in [&report.interactive, &report.batch] {
            assert_eq!(
                tier.admitted,
                tier.completed + tier.deadline_exceeded + tier.failed
            );
            assert_eq!(tier.offered, tier.admitted + tier.rejected);
        }
        assert!(report.achieved_rate > 0.0);
        let done = report.interactive.completed + report.batch.completed;
        assert!(done > 0);
        engine.shutdown();
    }

    #[test]
    fn write_mix_rides_the_batch_tier_and_reports_separately() {
        let mut table = spbla_lang::SymbolTable::new();
        let a = table.intern("a");
        let graph = LabeledGraph::from_triples(32, (0..31).map(|k| (k, a, k + 1)));
        let engine = Engine::new(DeviceGrid::new(2), EngineConfig::default());
        let a = engine.with_symbols(|t| t.intern("a"));
        engine.add_graph("g", graph);
        let config = LoadConfig {
            rate_per_sec: 2000.0,
            requests: 80,
            write_fraction: 0.4,
            interactive_deadline_ms: Some(5_000),
            ..LoadConfig::default()
        };
        // The mixed schedule is deterministic and routes every write to
        // the batch tier.
        let schedule = arrival_schedule_mixed(&config, 1, 4);
        assert_eq!(schedule, arrival_schedule_mixed(&config, 1, 4));
        assert!(schedule.iter().any(|x| x.write));
        assert!(schedule.iter().any(|x| !x.write));
        assert!(schedule
            .iter()
            .filter(|x| x.write)
            .all(|x| x.tier == QosTier::Batch && x.query < 4));
        // write_fraction 0 must reproduce the historical read-only
        // schedule draw-for-draw.
        let read_only = LoadConfig {
            write_fraction: 0.0,
            ..config.clone()
        };
        assert_eq!(
            arrival_schedule_mixed(&read_only, 1, 4),
            arrival_schedule(&read_only, 1)
        );

        let writes = write_query_templates(a, 32, 4, 4, config.seed);
        assert_eq!(writes.len(), 4);
        let report = run_open_loop_mixed(&engine, "g", &[Query::Closure], &writes, &config);
        assert_eq!(report.offered(), 80);
        for tier in [&report.interactive, &report.batch, &report.writes] {
            assert_eq!(
                tier.admitted,
                tier.completed + tier.deadline_exceeded + tier.failed
            );
            assert_eq!(tier.offered, tier.admitted + tier.rejected);
        }
        assert!(report.writes.offered > 0, "the mix must schedule writes");
        assert!(report.writes.completed > 0, "writes must execute");
        assert!(engine.stats().updates_applied > 0);
        engine.shutdown();
    }
}
