//! Typed engine errors — everything a client of the serving layer can
//! observe, including admission-control rejection and deadline misses.

use spbla_core::SpblaError;
use spbla_gpu_sim::DeviceError;

use crate::engine::QosTier;

/// Errors surfaced to engine clients.
#[derive(Debug)]
pub enum EngineError {
    /// The bounded admission queue is full for the request's tier; the
    /// request was **not** enqueued. Back off and resubmit — nothing
    /// blocks.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// Admission limit the request bounced off (the tier's
        /// threshold, ≤ the configured queue capacity for batch
        /// requests).
        capacity: usize,
        /// QoS tier the request was submitted under.
        tier: QosTier,
    },
    /// The request's deadline elapsed (in queue or mid-execution; a
    /// request stopped between kernel launches reports the launch-time
    /// numbers from the device's stop token).
    DeadlineExceeded {
        /// Milliseconds elapsed when the deadline was detected.
        elapsed_ms: u64,
        /// The request's budget in milliseconds.
        budget_ms: u64,
    },
    /// The client cancelled the ticket before completion.
    Cancelled,
    /// No graph with this name in the catalog.
    UnknownGraph(String),
    /// The query text failed to parse.
    PlanError(String),
    /// The engine is shutting down; the request was not served.
    ShuttingDown,
    /// Execution failed on the device (OOM, dimension errors, …).
    Exec(SpblaError),
}

impl EngineError {
    /// Map an execution error, promoting the cooperative-cancellation
    /// device errors to their first-class engine forms.
    pub(crate) fn from_exec(e: SpblaError) -> EngineError {
        match e {
            SpblaError::Device(DeviceError::Cancelled) => EngineError::Cancelled,
            SpblaError::Device(DeviceError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            }) => EngineError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            },
            other => EngineError::Exec(other),
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Overloaded {
                depth,
                capacity,
                tier,
            } => write!(
                f,
                "admission queue full for {} tier (depth {depth} of {capacity})",
                tier.as_str()
            ),
            EngineError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed of a {budget_ms} ms budget"
            ),
            EngineError::Cancelled => write!(f, "request cancelled"),
            EngineError::UnknownGraph(name) => write!(f, "unknown graph '{name}'"),
            EngineError::PlanError(msg) => write!(f, "query failed to plan: {msg}"),
            EngineError::ShuttingDown => write!(f, "engine shutting down"),
            EngineError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}
