//! The planner: query text → executable plan, memoised by canonical key.
//!
//! Planning is cheap relative to execution but not free — a regex goes
//! through Glushkov construction, subset determinisation and Hopcroft
//! minimisation; a grammar through the CNF transformation. A serving
//! workload replays the same handful of query templates endlessly, so
//! plans are cached under the *canonical* rendering of the parsed query
//! ([`spbla_lang::Regex::canonical`] / [`spbla_lang::Grammar::canonical`]):
//! any two spellings of one query — whitespace, sugar, nonterminal
//! naming — hit the same entry, while distinct queries can never alias
//! (the canonical forms are injective). The canonical key is also the
//! scheduler's same-plan batching key.

use std::sync::{Arc, Mutex};

use rustc_hash::FxHashMap;
use spbla_obs::Counter;

use spbla_lang::dfa::Dfa;
use spbla_lang::glushkov::glushkov;
use spbla_lang::minimize::minimize;
use spbla_lang::{CnfGrammar, Grammar, Nfa, Regex, SymbolTable};

use crate::error::EngineError;

/// Source-count ceiling under which the engine routes an RPQ batch to
/// the vector frontier path
/// ([`spbla_graph::rpq_bfs::rpq_from_sources_mats`]) instead of the
/// batched `b × n` product-machine BFS. Answers are bit-identical
/// either way (both render sorted, deduplicated vertex sets); the
/// constant is set from the `report frontier` ablation
/// (BENCH_frontier.json), which sweeps source count on the LUBM
/// fixture: a lone source ties (~15–30 µs both paths, within noise)
/// and stays on the frontier path — it touches `O(touched edges)` and
/// never materialises the `b × n` machine state — while from 2 sources
/// up the product machine wins 2–3× because the simulator's launch
/// chain amortises across the batch far faster than the per-source
/// frontier chase repeats it.
pub const FRONTIER_MAX_SOURCES: usize = 1;

/// What a plan executes as.
#[derive(Debug)]
pub enum PlanKind {
    /// RPQ: the minimised ε-free automaton of the regex.
    Rpq(Nfa),
    /// CFPQ: the grammar in Chomsky normal form.
    Cfpq(CnfGrammar),
    /// Transitive closure of the unlabeled adjacency matrix.
    Closure,
    /// Transitive closure via the SCC condensation: the planner's
    /// preprocessing stage fetches (or builds) the graph version's
    /// cached [`spbla_prep::Condensation`] and runs the fused fixpoint
    /// on the component DAG instead of the raw adjacency. Bit-identical
    /// to [`PlanKind::Closure`] by construction.
    ClosureCondensed,
    /// Graph mutation: apply an update batch to the latest version.
    Update,
}

/// A compiled, immutable, shareable plan.
#[derive(Debug)]
pub struct Plan {
    /// Canonical key: namespaced canonical query rendering. Equal keys
    /// mean identical plans — the batching invariant.
    pub key: String,
    /// The executable form.
    pub kind: PlanKind,
}

/// Plan cache with hit/miss accounting. The cache can be disabled for
/// the E12 ablation; keys (and therefore batching) work either way.
pub struct Planner {
    enabled: bool,
    cache: Mutex<FxHashMap<String, Arc<Plan>>>,
    hits: Counter,
    misses: Counter,
}

impl Planner {
    pub fn new(enabled: bool) -> Planner {
        Planner::with_counters(enabled, Counter::default(), Counter::default())
    }

    /// Build with caller-provided counter cells — the engine hands in
    /// registry-owned counters so hit/miss accounting lands in the
    /// global [`spbla_obs::MetricsRegistry`] with no second bookkeeping.
    pub fn with_counters(enabled: bool, hits: Counter, misses: Counter) -> Planner {
        Planner {
            enabled,
            cache: Mutex::new(FxHashMap::default()),
            hits,
            misses,
        }
    }

    /// Plan a regex query: parse, canonicalise, then reuse or build the
    /// minimised automaton.
    pub fn plan_rpq(
        &self,
        text: &str,
        table: &Mutex<SymbolTable>,
    ) -> Result<Arc<Plan>, EngineError> {
        let (key, regex) = {
            let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
            let regex = Regex::parse(text, &mut table).map_err(EngineError::PlanError)?;
            (format!("rpq:{}", regex.canonical(&table)), regex)
        };
        self.get_or_build(key, || {
            PlanKind::Rpq(minimize(&Dfa::from_nfa(&glushkov(&regex))))
        })
    }

    /// Plan a CFPQ query: parse the grammar, canonicalise, then reuse
    /// or build the CNF.
    pub fn plan_cfpq(
        &self,
        grammar: &str,
        table: &Mutex<SymbolTable>,
    ) -> Result<Arc<Plan>, EngineError> {
        let (key, grammar) = {
            let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
            let g = Grammar::parse(grammar, &mut table).map_err(EngineError::PlanError)?;
            (format!("cfpq:{}", g.canonical(&table)), g)
        };
        self.get_or_build(key, || PlanKind::Cfpq(CnfGrammar::from_grammar(&grammar)))
    }

    /// The (single) closure plan.
    pub fn plan_closure(&self) -> Result<Arc<Plan>, EngineError> {
        self.get_or_build("closure".to_string(), || PlanKind::Closure)
    }

    /// The condensed-closure plan: closure with the SCC preprocessing
    /// stage in front.
    pub fn plan_closure_condensed(&self) -> Result<Arc<Plan>, EngineError> {
        self.get_or_build("closure_condensed".to_string(), || {
            PlanKind::ClosureCondensed
        })
    }

    /// The (single) update plan — mutations ride the same admission
    /// queue as queries, so they need a plan like everyone else.
    pub fn plan_update(&self) -> Result<Arc<Plan>, EngineError> {
        self.get_or_build("update".to_string(), || PlanKind::Update)
    }

    fn get_or_build(
        &self,
        key: String,
        build: impl FnOnce() -> PlanKind,
    ) -> Result<Arc<Plan>, EngineError> {
        if self.enabled {
            if let Some(plan) = self
                .cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(&key)
            {
                self.hits.inc(1);
                return Ok(Arc::clone(plan));
            }
        }
        self.misses.inc(1);
        let plan = Arc::new(Plan {
            key: key.clone(),
            kind: build(),
        });
        if self.enabled {
            // First planner wins a race; both plans are identical
            // because the build is a pure function of the key.
            self.cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(key)
                .or_insert_with(|| Arc::clone(&plan));
        }
        Ok(plan)
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respelled_queries_hit() {
        let planner = Planner::new(true);
        let table = Mutex::new(SymbolTable::new());
        let a = planner.plan_rpq("knows . (likes|knows)*", &table).unwrap();
        let b = planner.plan_rpq("knows(likes | knows)*", &table).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(planner.counters(), (1, 1));
        let c = planner.plan_rpq("knows . likes", &table).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(planner.counters(), (1, 2));
    }

    #[test]
    fn disabled_cache_always_misses_but_keys_agree() {
        let planner = Planner::new(false);
        let table = Mutex::new(SymbolTable::new());
        let a = planner.plan_rpq("a . b*", &table).unwrap();
        let b = planner.plan_rpq("a b*", &table).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.key, b.key); // batching still coalesces
        assert_eq!(planner.counters(), (0, 2));
    }

    #[test]
    fn rpq_and_cfpq_namespaces_disjoint() {
        let planner = Planner::new(true);
        let table = Mutex::new(SymbolTable::new());
        let r = planner.plan_rpq("a", &table).unwrap();
        let g = planner.plan_cfpq("S -> a", &table).unwrap();
        assert_ne!(r.key, g.key);
        let c = planner.plan_closure().unwrap();
        assert_eq!(c.key, "closure");
        assert_eq!(planner.len(), 3);
    }
}
