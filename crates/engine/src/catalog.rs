//! The graph catalog: named host-resident graphs plus per-device
//! residency of their decomposed Boolean matrices.
//!
//! A registered graph lives on the host as a [`LabeledGraph`] (one edge
//! list per label — the decomposed form the paper's evaluation assumes).
//! Execution wants the label matrices *on the serving device*; uploading
//! them per request would swamp the PCIe counters, so each device keeps
//! an LRU set of resident graphs bounded by a byte budget. Eviction
//! drops the catalog's [`Arc`] — device memory is actually released when
//! the last in-flight request using that residency finishes, so evicting
//! under a running query can never corrupt it, and [`spbla_gpu_sim::DeviceStats`]
//! meters the release the moment it happens.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rustc_hash::FxHashMap;

use spbla_core::{Instance, Matrix};
use spbla_graph::LabeledGraph;
use spbla_lang::Symbol;

use crate::error::EngineError;

/// A graph's matrices resident on one device.
#[derive(Debug)]
pub struct Resident {
    /// One adjacency matrix per label.
    pub labels: FxHashMap<Symbol, Matrix>,
    /// The unlabeled adjacency (union over labels) for closure queries.
    pub adjacency: Matrix,
    /// Vertex count.
    pub n_vertices: u32,
    /// Device bytes this residency holds.
    pub bytes: usize,
}

struct DeviceResidency {
    /// LRU order: least-recent first, most-recent last.
    order: Vec<String>,
    map: FxHashMap<String, Arc<Resident>>,
    bytes: usize,
}

/// Named graphs plus per-device LRU residency.
pub struct Catalog {
    host: Mutex<FxHashMap<String, Arc<LabeledGraph>>>,
    residency: Vec<Mutex<DeviceResidency>>,
    /// Per-device residency budget in bytes.
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Catalog {
    /// A catalog serving `n_devices` devices, each holding at most
    /// `budget` bytes of resident graph matrices.
    pub fn new(n_devices: usize, budget: usize) -> Catalog {
        Catalog {
            host: Mutex::new(FxHashMap::default()),
            residency: (0..n_devices)
                .map(|_| {
                    Mutex::new(DeviceResidency {
                        order: Vec::new(),
                        map: FxHashMap::default(),
                        bytes: 0,
                    })
                })
                .collect(),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Register (or replace) a named graph. Replacing drops any stale
    /// residency on every device.
    pub fn add(&self, name: &str, graph: LabeledGraph) {
        let replaced = self
            .host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), Arc::new(graph))
            .is_some();
        if replaced {
            for slot in &self.residency {
                let mut res = slot.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(old) = res.map.remove(name) {
                    res.bytes -= old.bytes;
                    res.order.retain(|n| n != name);
                }
            }
        }
    }

    /// The host-resident graph, if registered.
    pub fn host_graph(&self, name: &str) -> Result<Arc<LabeledGraph>, EngineError> {
        self.host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownGraph(name.to_string()))
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// The graph's matrices resident on device `dev`, uploading (and
    /// LRU-evicting colder graphs past the budget) on miss. Upload
    /// failures are typed and leave the residency untouched.
    pub fn resident(
        &self,
        name: &str,
        dev: usize,
        inst: &Instance,
    ) -> Result<Arc<Resident>, EngineError> {
        let host = self.host_graph(name)?;
        let mut res = self.residency[dev]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(r) = res.map.get(name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            let r = Arc::clone(r);
            // Move to most-recent.
            res.order.retain(|n| n != name);
            res.order.push(name.to_string());
            return Ok(r);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);

        // Build the residency (outside no lock — only this device's
        // worker takes this mutex, so holding it cannot stall peers).
        let mut labels = FxHashMap::default();
        let mut bytes = 0usize;
        for sym in host.labels() {
            let m = host
                .label_matrix(inst, sym)
                .map_err(EngineError::from_exec)?;
            bytes += m.memory_bytes();
            labels.insert(sym, m);
        }
        let adjacency =
            Matrix::from_csr(inst, host.adjacency_csr()).map_err(EngineError::from_exec)?;
        bytes += adjacency.memory_bytes();
        let resident = Arc::new(Resident {
            labels,
            adjacency,
            n_vertices: host.n_vertices(),
            bytes,
        });

        // Evict least-recent entries until the newcomer fits. A graph
        // larger than the whole budget still gets inserted (the device
        // may hold it transiently); it will be the first evicted.
        while res.bytes + bytes > self.budget && !res.order.is_empty() {
            let victim = res.order.remove(0);
            if let Some(old) = res.map.remove(&victim) {
                res.bytes -= old.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        res.bytes += bytes;
        res.order.push(name.to_string());
        res.map.insert(name.to_string(), Arc::clone(&resident));
        Ok(resident)
    }

    /// (hits, misses, evictions) so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Resident bytes currently accounted on device `dev`.
    pub fn resident_bytes(&self, dev: usize) -> usize {
        self.residency[dev]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::SymbolTable;

    fn graph(n: u32, label: Symbol) -> LabeledGraph {
        LabeledGraph::from_triples(n, (0..n - 1).map(|i| (i, label, i + 1)))
    }

    #[test]
    fn hit_miss_and_unknown() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let cat = Catalog::new(1, usize::MAX);
        cat.add("g", graph(10, a));
        let inst = Instance::cuda_sim();
        assert!(matches!(
            cat.resident("nope", 0, &inst),
            Err(EngineError::UnknownGraph(_))
        ));
        let r1 = cat.resident("g", 0, &inst).unwrap();
        let r2 = cat.resident("g", 0, &inst).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(cat.counters(), (1, 1, 0));
        assert_eq!(r1.n_vertices, 10);
    }

    #[test]
    fn lru_evicts_coldest_within_budget() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let inst = Instance::cuda_sim();
        // Budget that fits roughly two of the three graphs.
        let probe = {
            let cat = Catalog::new(1, usize::MAX);
            cat.add("p", graph(64, a));
            cat.resident("p", 0, &inst).unwrap().bytes
        };
        let cat = Catalog::new(1, probe * 2 + probe / 2);
        for name in ["g1", "g2", "g3"] {
            cat.add(name, graph(64, a));
        }
        cat.resident("g1", 0, &inst).unwrap();
        cat.resident("g2", 0, &inst).unwrap();
        cat.resident("g3", 0, &inst).unwrap(); // evicts g1 (coldest)
        let (_, _, evictions) = cat.counters();
        assert!(evictions >= 1, "expected an eviction");
        // g2 was touched more recently than g1: it must still be a hit.
        cat.resident("g2", 0, &inst).unwrap();
        let (hits, _, _) = cat.counters();
        assert!(hits >= 1);
        // g1 re-resides as a miss.
        cat.resident("g1", 0, &inst).unwrap();
        let (_, misses, _) = cat.counters();
        assert_eq!(misses, 4); // g1, g2, g3, then g1 again after eviction
        assert!(cat.resident_bytes(0) <= probe * 2 + probe / 2);
    }

    #[test]
    fn replacement_drops_stale_residency() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let inst = Instance::cuda_sim();
        let cat = Catalog::new(2, usize::MAX);
        cat.add("g", graph(8, a));
        let old = cat.resident("g", 0, &inst).unwrap();
        cat.add("g", graph(16, a));
        let new = cat.resident("g", 0, &inst).unwrap();
        assert!(!Arc::ptr_eq(&old, &new));
        assert_eq!(new.n_vertices, 16);
    }
}
