//! The graph catalog: named, *versioned* host-resident graphs plus
//! per-device residency of their decomposed Boolean matrices.
//!
//! A registered graph lives on the host as a history of
//! [`LabeledGraph`] versions (one edge list per label — the decomposed
//! form the paper's evaluation assumes). Mutations arrive as
//! [`UpdateBatch`]es and produce a new version; queries *pin* the
//! version current at submission and read it consistently for their
//! whole lifetime, however many batches a writer applies meanwhile.
//! Unpinned historical versions are pruned as soon as the next batch
//! lands.
//!
//! Execution wants the label matrices *on the serving device*;
//! uploading them per request would swamp the PCIe counters, so each
//! device keeps an LRU set of resident `(graph, version)` entries
//! bounded by a byte budget. Eviction skips entries whose version is
//! pinned — reclaiming a snapshot out from under an admitted query
//! would un-version it — and drops the catalog's [`Arc`] otherwise;
//! device memory is actually released when the last in-flight request
//! using that residency finishes, so evicting under a running query can
//! never corrupt it, and [`spbla_gpu_sim::DeviceStats`] meters the
//! release the moment it happens.

use std::sync::{Arc, Mutex};

use spbla_obs::{labeled, metrics_global, Counter, Gauge};

use rustc_hash::FxHashMap;

use spbla_core::{Instance, K2Tree, Matrix};
use spbla_graph::LabeledGraph;
use spbla_lang::Symbol;
use spbla_prep::Condensation;
use spbla_stream::UpdateBatch;

use crate::error::EngineError;

/// A graph version's matrices resident on one device.
#[derive(Debug)]
pub struct Resident {
    /// One adjacency matrix per label.
    pub labels: FxHashMap<Symbol, Matrix>,
    /// The unlabeled adjacency (union over labels) for closure queries.
    pub adjacency: Matrix,
    /// Vertex count.
    pub n_vertices: u32,
    /// Device bytes this residency holds.
    pub bytes: usize,
}

/// One named graph's version history and pin counts.
struct VersionedHost {
    /// Latest version number.
    current: u64,
    /// Retained versions, ascending; always contains `current`.
    versions: Vec<(u64, Arc<LabeledGraph>)>,
    /// Outstanding pins per version (absent = zero).
    pins: FxHashMap<u64, u64>,
}

impl VersionedHost {
    fn get(&self, version: u64) -> Option<Arc<LabeledGraph>> {
        self.versions
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, g)| Arc::clone(g))
    }

    fn latest(&self) -> Arc<LabeledGraph> {
        self.get(self.current).expect("current version is retained")
    }

    /// Drop unpinned non-current versions, returning the version
    /// numbers that were pruned (their residency must go too).
    fn prune(&mut self) -> Vec<u64> {
        let current = self.current;
        let pins = &self.pins;
        let mut pruned = Vec::new();
        self.versions.retain(|(v, _)| {
            let keep = *v == current || pins.get(v).copied().unwrap_or(0) > 0;
            if !keep {
                pruned.push(*v);
            }
            keep
        });
        pruned
    }
}

/// A pinned-*history* graph version demoted to the read-mostly k²-tree
/// archival format: still addressable by the pinning query, but holding
/// compressed bitmaps instead of live kernel-ready matrices. Rehydrated
/// to a [`Resident`] on next access.
struct ArchivedResident {
    labels: Vec<(Symbol, K2Tree)>,
    adjacency: K2Tree,
    n_vertices: u32,
    /// Archived footprint, counted against the device budget.
    bytes: usize,
}

/// Host-side cache of per-`(graph, version)` SCC condensations — the
/// planner's preprocessing artefact for [`crate::PlanKind::ClosureCondensed`].
/// Byte-accounted (via [`Condensation::memory_bytes`]) against its own
/// LRU budget; entries die with their version (prune, replace).
struct CondensationCache {
    /// LRU order: least-recent first.
    order: Vec<(String, u64)>,
    map: FxHashMap<(String, u64), Arc<Condensation>>,
    bytes: usize,
}

struct DeviceResidency {
    /// LRU order: least-recent first, most-recent last.
    order: Vec<(String, u64)>,
    map: FxHashMap<(String, u64), Arc<Resident>>,
    /// Live resident bytes (actual per-format bytes of every matrix).
    bytes: usize,
    /// Evicted-but-pinned-history versions, in k²-tree form.
    archive: FxHashMap<(String, u64), ArchivedResident>,
    archive_bytes: usize,
}

impl DeviceResidency {
    fn total_bytes(&self) -> usize {
        self.bytes + self.archive_bytes
    }
}

/// Named versioned graphs plus per-device LRU residency.
pub struct Catalog {
    host: Mutex<FxHashMap<String, VersionedHost>>,
    residency: Vec<Mutex<DeviceResidency>>,
    /// Per-device residency budget in bytes (live + archived).
    budget: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    archivals: Counter,
    rehydrations: Counter,
    /// Cached SCC condensations, one per `(graph, version)`.
    cond: Mutex<CondensationCache>,
    /// Byte budget of the condensation cache (host memory).
    cond_budget: usize,
    cond_hits: Counter,
    cond_misses: Counter,
    cond_evictions: Counter,
    cond_bytes_gauge: Gauge,
    /// `spbla_dev_resident_bytes{dev}` — one gauge per device, kept in
    /// step with the accounted bytes so eviction pressure is visible in
    /// the metrics registry.
    resident_gauges: Vec<Gauge>,
}

impl Catalog {
    /// A catalog serving `n_devices` devices, each holding at most
    /// `budget` bytes of resident graph matrices.
    pub fn new(n_devices: usize, budget: usize) -> Catalog {
        Catalog::with_counters(
            n_devices,
            budget,
            Counter::default(),
            Counter::default(),
            Counter::default(),
        )
    }

    /// Build with caller-provided counter cells (the engine passes
    /// registry-owned counters; see [`crate::Engine`]).
    pub fn with_counters(
        n_devices: usize,
        budget: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> Catalog {
        Catalog {
            host: Mutex::new(FxHashMap::default()),
            residency: (0..n_devices)
                .map(|_| {
                    Mutex::new(DeviceResidency {
                        order: Vec::new(),
                        map: FxHashMap::default(),
                        bytes: 0,
                        archive: FxHashMap::default(),
                        archive_bytes: 0,
                    })
                })
                .collect(),
            budget,
            hits,
            misses,
            evictions,
            archivals: metrics_global().counter("spbla_catalog_archivals_total"),
            rehydrations: metrics_global().counter("spbla_catalog_rehydrations_total"),
            cond: Mutex::new(CondensationCache {
                order: Vec::new(),
                map: FxHashMap::default(),
                bytes: 0,
            }),
            cond_budget: budget,
            // Per-catalog cells (engines constructed back-to-back must
            // not alias); the prep crate's own spbla_prep_* metrics
            // cover the registry view.
            cond_hits: Counter::default(),
            cond_misses: Counter::default(),
            cond_evictions: Counter::default(),
            cond_bytes_gauge: Gauge::default(),
            resident_gauges: (0..n_devices)
                .map(|dev| {
                    metrics_global().gauge(&labeled(
                        "spbla_dev_resident_bytes",
                        &[("dev", &dev.to_string())],
                    ))
                })
                .collect(),
        }
    }

    /// Publish device `dev`'s accounted bytes to its gauge.
    fn sync_gauge(&self, dev: usize, res: &DeviceResidency) {
        self.resident_gauges[dev].set(res.total_bytes() as u64);
    }

    /// Register (or replace) a named graph as version 0. Replacing
    /// forgets the old history and drops any stale residency on every
    /// device.
    pub fn add(&self, name: &str, graph: LabeledGraph) {
        self.add_at_version(name, graph, 0);
    }

    /// Register (or replace) a named graph whose history starts at
    /// `version` — the recovery path, where a restored checkpoint
    /// resumes version numbering where the previous process stopped.
    pub fn add_at_version(&self, name: &str, graph: LabeledGraph, version: u64) {
        let replaced = self
            .host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                name.to_string(),
                VersionedHost {
                    current: version,
                    versions: vec![(version, Arc::new(graph))],
                    pins: FxHashMap::default(),
                },
            )
            .is_some();
        if replaced {
            self.drop_residency(name);
        }
    }

    /// Drop every residency entry for `name`, all versions, on every
    /// device. Called with the host lock *released* (residency locks
    /// are only ever taken alone or after the host lock, never before).
    fn drop_residency(&self, name: &str) {
        for (dev, slot) in self.residency.iter().enumerate() {
            let mut res = slot.lock().unwrap_or_else(|e| e.into_inner());
            let stale: Vec<(String, u64)> =
                res.map.keys().filter(|(n, _)| n == name).cloned().collect();
            for key in stale {
                if let Some(old) = res.map.remove(&key) {
                    res.bytes -= old.bytes;
                    res.order.retain(|k| k != &key);
                }
            }
            let archived: Vec<(String, u64)> = res
                .archive
                .keys()
                .filter(|(n, _)| n == name)
                .cloned()
                .collect();
            for key in archived {
                if let Some(old) = res.archive.remove(&key) {
                    res.archive_bytes -= old.bytes;
                }
            }
            self.sync_gauge(dev, &res);
        }
        let mut cond = self.cond.lock().unwrap_or_else(|e| e.into_inner());
        let stale: Vec<(String, u64)> = cond
            .map
            .keys()
            .filter(|(n, _)| n == name)
            .cloned()
            .collect();
        for key in stale {
            if let Some(old) = cond.map.remove(&key) {
                cond.bytes -= old.memory_bytes();
                cond.order.retain(|k| k != &key);
            }
        }
        self.cond_bytes_gauge.set(cond.bytes as u64);
    }

    /// Drop residency for exactly the given `(name, version)` pairs.
    fn drop_residency_versions(&self, name: &str, versions: &[u64]) {
        if versions.is_empty() {
            return;
        }
        for (dev, slot) in self.residency.iter().enumerate() {
            let mut res = slot.lock().unwrap_or_else(|e| e.into_inner());
            for &v in versions {
                let key = (name.to_string(), v);
                if let Some(old) = res.map.remove(&key) {
                    res.bytes -= old.bytes;
                    res.order.retain(|k| k != &key);
                }
                if let Some(old) = res.archive.remove(&key) {
                    res.archive_bytes -= old.bytes;
                }
            }
            self.sync_gauge(dev, &res);
        }
        let mut cond = self.cond.lock().unwrap_or_else(|e| e.into_inner());
        for &v in versions {
            let key = (name.to_string(), v);
            if let Some(old) = cond.map.remove(&key) {
                cond.bytes -= old.memory_bytes();
                cond.order.retain(|k| k != &key);
            }
        }
        self.cond_bytes_gauge.set(cond.bytes as u64);
    }

    /// The latest host-resident version, if the graph is registered.
    pub fn host_graph(&self, name: &str) -> Result<Arc<LabeledGraph>, EngineError> {
        self.host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(VersionedHost::latest)
            .ok_or_else(|| EngineError::UnknownGraph(name.to_string()))
    }

    /// A specific retained host-resident version.
    pub fn host_graph_at(
        &self,
        name: &str,
        version: u64,
    ) -> Result<Arc<LabeledGraph>, EngineError> {
        self.host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .ok_or_else(|| EngineError::UnknownGraph(name.to_string()))?
            .get(version)
            .ok_or_else(|| EngineError::UnknownGraph(format!("{name}@v{version}")))
    }

    /// The latest version number of a registered graph.
    pub fn current_version(&self, name: &str) -> Result<u64, EngineError> {
        self.host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|h| h.current)
            .ok_or_else(|| EngineError::UnknownGraph(name.to_string()))
    }

    /// Pin the latest version and return its number. While pinned, the
    /// version's host graph is retained and its residency is exempt
    /// from eviction.
    pub fn pin_latest(&self, name: &str) -> Result<u64, EngineError> {
        let mut host = self.host.lock().unwrap_or_else(|e| e.into_inner());
        let entry = host
            .get_mut(name)
            .ok_or_else(|| EngineError::UnknownGraph(name.to_string()))?;
        let version = entry.current;
        *entry.pins.entry(version).or_insert(0) += 1;
        Ok(version)
    }

    /// Release one pin on `version`. Fully-unpinned historical versions
    /// are pruned (host and residency) on the spot.
    pub fn unpin(&self, name: &str, version: u64) {
        let pruned = {
            let mut host = self.host.lock().unwrap_or_else(|e| e.into_inner());
            let Some(entry) = host.get_mut(name) else {
                return;
            };
            if let Some(count) = entry.pins.get_mut(&version) {
                *count -= 1;
                if *count == 0 {
                    entry.pins.remove(&version);
                }
            }
            entry.prune()
        };
        self.drop_residency_versions(name, &pruned);
    }

    /// Apply an update batch to the latest version, producing (and
    /// returning) the next version number. Serialised by the host lock:
    /// concurrent writers never lose an update. Unpinned predecessor
    /// versions are pruned immediately.
    pub fn apply_batch(&self, name: &str, batch: &UpdateBatch) -> Result<u64, EngineError> {
        let (version, pruned) = {
            let mut host = self.host.lock().unwrap_or_else(|e| e.into_inner());
            let entry = host
                .get_mut(name)
                .ok_or_else(|| EngineError::UnknownGraph(name.to_string()))?;
            let mut next = (*entry.latest()).clone();
            if let Some(max) = batch.max_vertex() {
                if max >= next.n_vertices() {
                    return Err(EngineError::PlanError(format!(
                        "update references vertex {max} but graph {name} has {}",
                        next.n_vertices()
                    )));
                }
            }
            batch.apply_to(&mut next);
            entry.current += 1;
            let version = entry.current;
            entry.versions.push((version, Arc::new(next)));
            (version, entry.prune())
        };
        self.drop_residency_versions(name, &pruned);
        Ok(version)
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        out.sort();
        out
    }

    /// The latest version's matrices resident on device `dev`.
    pub fn resident(
        &self,
        name: &str,
        dev: usize,
        inst: &Instance,
    ) -> Result<Arc<Resident>, EngineError> {
        let version = self.current_version(name)?;
        self.resident_at(name, version, dev, inst)
    }

    /// A pinned-or-retained version's matrices resident on device
    /// `dev`, uploading (and LRU-evicting colder *unpinned* entries
    /// past the budget) on miss. Upload failures are typed and leave
    /// the residency untouched.
    pub fn resident_at(
        &self,
        name: &str,
        version: u64,
        dev: usize,
        inst: &Instance,
    ) -> Result<Arc<Resident>, EngineError> {
        let host = self.host_graph_at(name, version)?;
        // Snapshot the pinned set and each graph's current version
        // *before* taking the residency lock — the host lock is never
        // taken inside a residency lock (that order would deadlock
        // against unpin/apply_batch). A pin that lands after this
        // snapshot only risks one spurious eviction; the request
        // holding that pin re-uploads on its own miss.
        let (pinned, currents) = {
            let hosts = self.host.lock().unwrap_or_else(|e| e.into_inner());
            let pinned: Vec<(String, u64)> = hosts
                .iter()
                .flat_map(|(n, h)| {
                    h.pins
                        .iter()
                        .filter(|(_, &c)| c > 0)
                        .map(move |(&v, _)| (n.clone(), v))
                })
                .collect();
            let currents: FxHashMap<String, u64> =
                hosts.iter().map(|(n, h)| (n.clone(), h.current)).collect();
            (pinned, currents)
        };
        let key = (name.to_string(), version);
        let mut res = self.residency[dev]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(r) = res.map.get(&key) {
            self.hits.inc(1);
            let r = Arc::clone(r);
            // Move to most-recent.
            res.order.retain(|k| k != &key);
            res.order.push(key);
            return Ok(r);
        }
        self.misses.inc(1);

        // Build the residency (holding only this device's lock — only
        // this device's worker takes this mutex, so peers never stall).
        // An archived copy rehydrates from its k²-trees instead of the
        // host edge lists.
        let resident = if let Some(arch) = res.archive.remove(&key) {
            res.archive_bytes -= arch.bytes;
            self.rehydrations.inc(1);
            let mut labels = FxHashMap::default();
            let mut bytes = 0usize;
            for (sym, tree) in &arch.labels {
                let m = Matrix::from_csr(inst, tree.to_csr()).map_err(EngineError::from_exec)?;
                bytes += m.memory_bytes();
                labels.insert(*sym, m);
            }
            let adjacency =
                Matrix::from_csr(inst, arch.adjacency.to_csr()).map_err(EngineError::from_exec)?;
            bytes += adjacency.memory_bytes();
            Arc::new(Resident {
                labels,
                adjacency,
                n_vertices: arch.n_vertices,
                bytes,
            })
        } else {
            let mut labels = FxHashMap::default();
            let mut bytes = 0usize;
            for sym in host.labels() {
                let m = host
                    .label_matrix(inst, sym)
                    .map_err(EngineError::from_exec)?;
                bytes += m.memory_bytes();
                labels.insert(sym, m);
            }
            let adjacency =
                Matrix::from_csr(inst, host.adjacency_csr()).map_err(EngineError::from_exec)?;
            bytes += adjacency.memory_bytes();
            Arc::new(Resident {
                labels,
                adjacency,
                n_vertices: host.n_vertices(),
                bytes,
            })
        };
        let bytes = resident.bytes;

        // Evict least-recent entries until the newcomer fits, counting
        // live *and* archived bytes against the budget. Three victim
        // classes:
        // * pinned *current* versions are skipped outright — an
        //   admitted query holds them and they are the graph's hot
        //   serving copy;
        // * pinned *history* versions (a snapshot some long query still
        //   reads) are demoted to the read-mostly k²-tree archive —
        //   still addressable, far smaller, rehydrated on next access;
        // * unpinned entries are dropped.
        // An entry larger than what eviction can free still gets
        // inserted (the device may hold it transiently); it will be the
        // first evicted later.
        let mut scan = 0;
        while res.total_bytes() + bytes > self.budget && scan < res.order.len() {
            let victim = res.order[scan].clone();
            if pinned.contains(&victim) {
                if currents.get(&victim.0) == Some(&victim.1) {
                    scan += 1;
                    continue;
                }
                // Pinned history: archive instead of dropping.
                res.order.remove(scan);
                if let Some(old) = res.map.remove(&victim) {
                    res.bytes -= old.bytes;
                    let mut trees = Vec::with_capacity(old.labels.len());
                    let mut arch_bytes = 0usize;
                    for (sym, m) in &old.labels {
                        let t = K2Tree::from_csr(&m.to_csr());
                        arch_bytes += t.memory_bytes();
                        trees.push((*sym, t));
                    }
                    trees.sort_by_key(|(sym, _)| *sym);
                    let adjacency = K2Tree::from_csr(&old.adjacency.to_csr());
                    arch_bytes += adjacency.memory_bytes();
                    let arch = ArchivedResident {
                        labels: trees,
                        adjacency,
                        n_vertices: old.n_vertices,
                        bytes: arch_bytes,
                    };
                    res.archive_bytes += arch.bytes;
                    res.archive.insert(victim, arch);
                    self.archivals.inc(1);
                    self.evictions.inc(1);
                }
                continue;
            }
            res.order.remove(scan);
            if let Some(old) = res.map.remove(&victim) {
                res.bytes -= old.bytes;
                self.evictions.inc(1);
            }
        }
        res.bytes += bytes;
        res.order.push(key.clone());
        res.map.insert(key, Arc::clone(&resident));
        self.sync_gauge(dev, &res);
        Ok(resident)
    }

    /// The SCC condensation of `(name, version)`'s adjacency — the
    /// planner's preprocessing stage. Built from the retained host
    /// graph on miss and cached LRU under the condensation budget;
    /// entries are invalidated with their version (prune, replace), so
    /// a cached condensation always matches its snapshot exactly.
    pub fn condensation_at(
        &self,
        name: &str,
        version: u64,
    ) -> Result<Arc<Condensation>, EngineError> {
        let key = (name.to_string(), version);
        {
            let mut cond = self.cond.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(c) = cond.map.get(&key) {
                self.cond_hits.inc(1);
                let c = Arc::clone(c);
                cond.order.retain(|k| k != &key);
                cond.order.push(key);
                return Ok(c);
            }
        }
        self.cond_misses.inc(1);
        // Build outside the cache lock — Tarjan over a large graph must
        // not serialise every other worker's cache hit.
        let host = self.host_graph_at(name, version)?;
        let built = Arc::new(Condensation::build(
            host.n_vertices(),
            &host.adjacency_csr().to_pairs(),
        ));
        let bytes = built.memory_bytes();
        let mut cond = self.cond.lock().unwrap_or_else(|e| e.into_inner());
        // A racing worker may have built the same version; keep the
        // incumbent (they are identical — the build is a pure function
        // of the snapshot).
        if let Some(c) = cond.map.get(&key) {
            return Ok(Arc::clone(c));
        }
        while cond.bytes + bytes > self.cond_budget && !cond.order.is_empty() {
            let victim = cond.order.remove(0);
            if let Some(old) = cond.map.remove(&victim) {
                cond.bytes -= old.memory_bytes();
                self.cond_evictions.inc(1);
            }
        }
        cond.bytes += bytes;
        cond.order.push(key.clone());
        cond.map.insert(key, Arc::clone(&built));
        self.cond_bytes_gauge.set(cond.bytes as u64);
        Ok(built)
    }

    /// (hits, misses, evictions) of the condensation cache so far.
    pub fn condensation_counters(&self) -> (u64, u64, u64) {
        (
            self.cond_hits.get(),
            self.cond_misses.get(),
            self.cond_evictions.get(),
        )
    }

    /// Cached condensations right now.
    pub fn condensation_count(&self) -> usize {
        self.cond
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Host bytes the condensation cache holds right now.
    pub fn condensation_bytes(&self) -> usize {
        self.cond.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    /// (hits, misses, evictions) so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits.get(), self.misses.get(), self.evictions.get())
    }

    /// (archivals, rehydrations) so far.
    pub fn archive_counters(&self) -> (u64, u64) {
        (self.archivals.get(), self.rehydrations.get())
    }

    /// Bytes currently accounted on device `dev` (live + archived).
    pub fn resident_bytes(&self, dev: usize) -> usize {
        self.residency[dev]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .total_bytes()
    }

    /// Number of live (kernel-ready) residencies on device `dev`.
    pub fn resident_count(&self, dev: usize) -> usize {
        self.residency[dev]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// Number of archived (k²-tree) residencies on device `dev`.
    pub fn archived_count(&self, dev: usize) -> usize {
        self.residency[dev]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .archive
            .len()
    }

    /// Number of retained host versions of a graph (pinned + latest).
    pub fn retained_versions(&self, name: &str) -> usize {
        self.host
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .map(|h| h.versions.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::SymbolTable;

    fn graph(n: u32, label: Symbol) -> LabeledGraph {
        LabeledGraph::from_triples(n, (0..n - 1).map(|i| (i, label, i + 1)))
    }

    #[test]
    fn hit_miss_and_unknown() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let cat = Catalog::new(1, usize::MAX);
        cat.add("g", graph(10, a));
        let inst = Instance::cuda_sim();
        assert!(matches!(
            cat.resident("nope", 0, &inst),
            Err(EngineError::UnknownGraph(_))
        ));
        let r1 = cat.resident("g", 0, &inst).unwrap();
        let r2 = cat.resident("g", 0, &inst).unwrap();
        assert!(Arc::ptr_eq(&r1, &r2));
        assert_eq!(cat.counters(), (1, 1, 0));
        assert_eq!(r1.n_vertices, 10);
    }

    #[test]
    fn lru_evicts_coldest_within_budget() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let inst = Instance::cuda_sim();
        // Budget that fits roughly two of the three graphs.
        let probe = {
            let cat = Catalog::new(1, usize::MAX);
            cat.add("p", graph(64, a));
            cat.resident("p", 0, &inst).unwrap().bytes
        };
        let cat = Catalog::new(1, probe * 2 + probe / 2);
        for name in ["g1", "g2", "g3"] {
            cat.add(name, graph(64, a));
        }
        cat.resident("g1", 0, &inst).unwrap();
        cat.resident("g2", 0, &inst).unwrap();
        cat.resident("g3", 0, &inst).unwrap(); // evicts g1 (coldest)
        let (_, _, evictions) = cat.counters();
        assert!(evictions >= 1, "expected an eviction");
        // g2 was touched more recently than g1: it must still be a hit.
        cat.resident("g2", 0, &inst).unwrap();
        let (hits, _, _) = cat.counters();
        assert!(hits >= 1);
        // g1 re-resides as a miss.
        cat.resident("g1", 0, &inst).unwrap();
        let (_, misses, _) = cat.counters();
        assert_eq!(misses, 4); // g1, g2, g3, then g1 again after eviction
        assert!(cat.resident_bytes(0) <= probe * 2 + probe / 2);
    }

    #[test]
    fn replacement_drops_stale_residency() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let inst = Instance::cuda_sim();
        let cat = Catalog::new(2, usize::MAX);
        cat.add("g", graph(8, a));
        let old = cat.resident("g", 0, &inst).unwrap();
        cat.add("g", graph(16, a));
        let new = cat.resident("g", 0, &inst).unwrap();
        assert!(!Arc::ptr_eq(&old, &new));
        assert_eq!(new.n_vertices, 16);
    }

    #[test]
    fn apply_batch_versions_and_prunes() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let cat = Catalog::new(1, usize::MAX);
        cat.add("g", graph(8, a));
        assert_eq!(cat.current_version("g").unwrap(), 0);

        let mut batch = UpdateBatch::new();
        batch.insert(0, a, 7);
        assert_eq!(cat.apply_batch("g", &batch).unwrap(), 1);
        assert_eq!(cat.current_version("g").unwrap(), 1);
        // v0 was unpinned: pruned.
        assert_eq!(cat.retained_versions("g"), 1);
        assert!(cat.host_graph_at("g", 0).is_err());
        assert!(cat.host_graph("g").unwrap().edges_of(a).contains(&(0, 7)));

        // Pinned predecessors survive further batches.
        let pinned = cat.pin_latest("g").unwrap();
        assert_eq!(pinned, 1);
        let mut batch = UpdateBatch::new();
        batch.delete(0, a, 7);
        assert_eq!(cat.apply_batch("g", &batch).unwrap(), 2);
        assert_eq!(cat.retained_versions("g"), 2);
        let old = cat.host_graph_at("g", 1).unwrap();
        assert!(old.edges_of(a).contains(&(0, 7)));
        assert!(!cat.host_graph("g").unwrap().edges_of(a).contains(&(0, 7)));

        // Unpinning reclaims it.
        cat.unpin("g", 1);
        assert_eq!(cat.retained_versions("g"), 1);
        assert!(cat.host_graph_at("g", 1).is_err());

        // Out-of-bounds updates are rejected without a version bump.
        let mut bad = UpdateBatch::new();
        bad.insert(0, a, 99);
        assert!(cat.apply_batch("g", &bad).is_err());
        assert_eq!(cat.current_version("g").unwrap(), 2);
    }

    #[test]
    fn eviction_skips_pinned_versions() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let inst = Instance::cuda_sim();
        let probe = {
            let cat = Catalog::new(1, usize::MAX);
            cat.add("p", graph(64, a));
            cat.resident("p", 0, &inst).unwrap().bytes
        };
        // Budget fits two graphs.
        let cat = Catalog::new(1, probe * 2 + probe / 2);
        for name in ["g1", "g2", "g3"] {
            cat.add(name, graph(64, a));
        }
        // Pin g1@0 — the LRU-coldest after the first two uploads.
        cat.pin_latest("g1").unwrap();
        cat.resident("g1", 0, &inst).unwrap();
        cat.resident("g2", 0, &inst).unwrap();
        cat.resident("g3", 0, &inst).unwrap(); // must evict g2, not pinned g1
        let r1 = cat.resident("g1", 0, &inst).unwrap();
        let (hits, _, _) = cat.counters();
        assert!(hits >= 1, "pinned g1 stayed resident");
        assert_eq!(r1.n_vertices, 64);
        let (_, misses_before, _) = cat.counters();
        cat.resident("g2", 0, &inst).unwrap(); // g2 was the victim: re-upload
        let (_, misses_after, _) = cat.counters();
        assert_eq!(misses_after, misses_before + 1);
        cat.unpin("g1", 0);
    }

    #[test]
    fn versioned_residency_is_per_version() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let inst = Instance::cuda_sim();
        let cat = Catalog::new(1, usize::MAX);
        cat.add("g", graph(8, a));
        let v0 = cat.pin_latest("g").unwrap();
        let r0 = cat.resident_at("g", v0, 0, &inst).unwrap();

        let mut batch = UpdateBatch::new();
        batch.insert(0, a, 7);
        let v1 = cat.apply_batch("g", &batch).unwrap();
        let r1 = cat.resident_at("g", v1, 0, &inst).unwrap();
        assert!(!Arc::ptr_eq(&r0, &r1));
        assert_eq!(r0.adjacency.nnz() + 1, r1.adjacency.nnz());

        // The pinned v0 residency is still a hit.
        let (hits_before, _, _) = cat.counters();
        let r0b = cat.resident_at("g", v0, 0, &inst).unwrap();
        assert!(Arc::ptr_eq(&r0, &r0b));
        let (hits_after, _, _) = cat.counters();
        assert_eq!(hits_after, hits_before + 1);

        // Unpinning v0 drops both its host version and its residency.
        cat.unpin("g", v0);
        assert!(cat.resident_at("g", v0, 0, &inst).is_err());
    }

    #[test]
    fn condensation_cache_follows_versions() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let cat = Catalog::new(1, usize::MAX);
        // 0→1→2→0 cycle plus a tail.
        let g = LabeledGraph::from_triples(5, [(0, a, 1), (1, a, 2), (2, a, 0), (2, a, 3)]);
        cat.add("g", g);
        let v0 = cat.current_version("g").unwrap();
        let c1 = cat.condensation_at("g", v0).unwrap();
        assert_eq!(c1.n_components(), 3);
        let c2 = cat.condensation_at("g", v0).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2), "second lookup hits the cache");
        assert_eq!(cat.condensation_counters().0, 1);
        assert!(cat.condensation_bytes() > 0);

        // A new version gets its own entry; pruning v0 drops its entry.
        let mut batch = UpdateBatch::new();
        batch.insert(3, a, 4);
        let v1 = cat.apply_batch("g", &batch).unwrap();
        let c3 = cat.condensation_at("g", v1).unwrap();
        assert!(!Arc::ptr_eq(&c1, &c3));
        assert_eq!(cat.condensation_count(), 1, "v0's entry died with v0");

        // Replacing the graph clears everything.
        cat.add("g", LabeledGraph::from_triples(2, [(0, a, 1)]));
        assert_eq!(cat.condensation_count(), 0);
        assert_eq!(cat.condensation_bytes(), 0);
    }

    #[test]
    fn condensation_cache_evicts_under_budget() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let probe = {
            let cat = Catalog::new(1, usize::MAX);
            cat.add("p", graph(64, a));
            cat.condensation_at("p", 0).unwrap().memory_bytes()
        };
        // Budget fits one condensation, not two.
        let cat = Catalog::new(1, probe + probe / 2);
        cat.add("g1", graph(64, a));
        cat.add("g2", graph(64, a));
        cat.condensation_at("g1", 0).unwrap();
        cat.condensation_at("g2", 0).unwrap(); // evicts g1
        let (_, _, evictions) = cat.condensation_counters();
        assert!(evictions >= 1);
        assert!(cat.condensation_bytes() <= probe + probe / 2);
        cat.condensation_at("g1", 0).unwrap(); // miss again
        let (hits, misses, _) = cat.condensation_counters();
        assert_eq!((hits, misses), (0, 3)); // g1, g2, then g1 again
    }

    #[test]
    fn pinned_history_archives_and_rehydrates() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let inst = Instance::cuda_sim();
        let probe = {
            let cat = Catalog::new(1, usize::MAX);
            cat.add("p", graph(64, a));
            cat.resident("p", 0, &inst).unwrap().bytes
        };
        // Budget fits roughly two live graphs.
        let cat = Catalog::new(1, probe * 2 + probe / 2);
        for name in ["g1", "g2", "g3"] {
            cat.add(name, graph(64, a));
        }
        // Pin g1@0, then advance g1 so v0 becomes pinned *history*.
        let v0 = cat.pin_latest("g1").unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(0, a, 63);
        cat.apply_batch("g1", &batch).unwrap();
        let r0 = cat.resident_at("g1", v0, 0, &inst).unwrap();
        let want_adj = r0.adjacency.read();
        let want_label = r0.labels[&a].read();
        cat.resident("g2", 0, &inst).unwrap();
        // Third upload overflows the budget; the coldest entry is the
        // pinned-history g1@v0, which must be archived — not skipped,
        // not dropped.
        cat.resident("g3", 0, &inst).unwrap();
        let (archivals, _) = cat.archive_counters();
        assert!(archivals >= 1, "pinned history was archived");
        assert!(cat.archived_count(0) >= 1);
        assert!(
            cat.resident_bytes(0) <= probe * 2 + probe / 2,
            "archived bytes keep the device inside its budget"
        );

        // Re-access rehydrates the identical snapshot from k²-trees.
        let r0b = cat.resident_at("g1", v0, 0, &inst).unwrap();
        assert!(!Arc::ptr_eq(&r0, &r0b));
        assert_eq!(r0b.adjacency.read(), want_adj);
        assert_eq!(r0b.labels[&a].read(), want_label);
        let (_, rehydrations) = cat.archive_counters();
        assert!(rehydrations >= 1);

        // Unpinning prunes every trace, archive included.
        cat.unpin("g1", v0);
        assert_eq!(cat.archived_count(0), 0);
        assert!(cat.resident_at("g1", v0, 0, &inst).is_err());
    }
}
