//! # spbla-engine — the concurrent query-serving subsystem
//!
//! The crates below this one are a *library*: you hold an [`Instance`],
//! build matrices, run one algorithm at a time. A graph database serves
//! differently — many clients, repeated query templates, a fleet of
//! devices, and latency budgets. This crate is that serving layer over
//! the SPbLA reproduction:
//!
//! * [`catalog`] — named graphs, host-resident in decomposed Boolean
//!   matrix form, with per-device LRU residency bounded by a byte
//!   budget (evictions metered through `DeviceStats`);
//! * [`planner`] — query text → executable plan (regex → minimised
//!   automaton, grammar → CNF), memoised under the *canonical* query
//!   rendering so respelled queries hit;
//! * [`engine`] — a bounded admission queue feeding one worker per
//!   [`DeviceGrid`](spbla_multidev::DeviceGrid) device, typed
//!   [`Overloaded`](EngineError::Overloaded) rejection, per-request
//!   deadlines via cooperative [`StopToken`](spbla_gpu_sim::StopToken)
//!   cancellation between kernel launches, and same-plan batching that
//!   coalesces queued single-source RPQs into one multi-source run with
//!   per-source provenance.
//!
//! ```
//! use spbla_engine::{Engine, EngineConfig, Query, QueryResult};
//! use spbla_graph::LabeledGraph;
//! use spbla_multidev::DeviceGrid;
//!
//! let engine = Engine::new(DeviceGrid::new(2), EngineConfig::default());
//! engine.add_graph_with("social", |table| {
//!     let follows = table.intern("follows");
//!     LabeledGraph::from_triples(3, [(0, follows, 1), (1, follows, 2)])
//! });
//! let ticket = engine
//!     .submit("social", Query::Rpq("follows . follows".into()))
//!     .unwrap();
//! let done = ticket.wait();
//! assert_eq!(done.result.unwrap(), QueryResult::Pairs(vec![(0, 2)]));
//! let stats = engine.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```
//!
//! [`Instance`]: spbla_core::Instance

pub mod catalog;
pub mod engine;
pub mod error;
pub mod planner;

pub use catalog::{Catalog, Resident};
pub use engine::{
    Completed, Engine, EngineConfig, EngineStats, QosTier, Query, QueryResult, RequestMetrics,
    Ticket,
};
pub use error::EngineError;
pub use planner::{Plan, PlanKind, Planner};
