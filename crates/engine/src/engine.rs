//! The engine: admission queue, device-pinned workers, tickets.
//!
//! One worker thread per grid device pulls from a single bounded
//! admission queue (work-stealing degenerate case: the queue *is* the
//! shared pool; a device is never idle while requests wait). Admission
//! is non-blocking — a full queue rejects with
//! [`EngineError::Overloaded`] instead of applying back-pressure by
//! blocking, so a closed-loop client can implement its own retry
//! policy. Deadlines ride on [`StopToken`]s armed on the worker's
//! device for the duration of one request: fixpoint loops observe the
//! token between kernel launches and unwind with a typed error, buffer
//! RAII releasing device memory on the way out.
//!
//! Same-plan batching: when a worker dequeues a deadline-less
//! single-source RPQ, it sweeps the queue for other deadline-less
//! single-source RPQs on the *same graph and same canonical plan key*
//! and runs them as one multi-source batch
//! ([`spbla_graph::rpq_batch::rpq_from_each_source_mats`]) — one
//! kernel-launch chain instead of one per request, with per-source
//! provenance keeping every client's answer its own.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spbla_core::Instance;
use spbla_gpu_sim::{DeviceStats, StopToken};
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::closure::closure_delta;
use spbla_graph::rpq_batch::{rpq_all_pairs_mats, rpq_from_each_source_mats};
use spbla_graph::rpq_bfs::rpq_from_sources_mats;
use spbla_graph::LabeledGraph;
use spbla_lang::SymbolTable;
use spbla_multidev::DeviceGrid;
use spbla_obs::{labeled, metrics_global, trace_global, Counter, Gauge, Histogram};
use spbla_stream::UpdateBatch;

use crate::catalog::Catalog;
use crate::error::EngineError;
use crate::planner::{Plan, PlanKind, Planner, FRONTIER_MAX_SOURCES};

/// Admission tier of a request: where it bounces off the bounded queue
/// and which rejection counter it lands in.
///
/// Interactive requests may fill the whole queue; batch requests are
/// rejected once the queue passes
/// [`EngineConfig::batch_admission_fraction`] of capacity, so a
/// saturating batch workload cannot starve interactive admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosTier {
    /// Latency-sensitive tier: admitted up to full queue capacity.
    Interactive,
    /// Throughput tier: admitted only while the queue is below the
    /// batch fraction of capacity.
    Batch,
}

impl QosTier {
    /// Stable lowercase name, used as the `tier` metric label.
    pub fn as_str(self) -> &'static str {
        match self {
            QosTier::Interactive => "interactive",
            QosTier::Batch => "batch",
        }
    }
}

/// Engine construction knobs; the defaults serve, the flags ablate.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bounded admission-queue capacity; a full queue rejects
    /// ([`EngineError::Overloaded`]) without blocking.
    pub queue_capacity: usize,
    /// Fraction of `queue_capacity` open to [`QosTier::Batch`]
    /// requests; the headroom above it is reserved for interactive
    /// traffic. Clamped to at least one slot.
    pub batch_admission_fraction: f64,
    /// Per-device catalog residency budget in bytes. `None` defaults to
    /// half the smallest device's memory capacity.
    pub residency_budget: Option<usize>,
    /// Memoise plans under their canonical key (E12 ablation flag).
    pub plan_cache: bool,
    /// Coalesce queued same-plan single-source RPQs (E12 ablation flag).
    pub batching: bool,
    /// Largest multi-source batch one dequeue may coalesce.
    pub max_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_capacity: 256,
            batch_admission_fraction: 0.75,
            residency_budget: None,
            plan_cache: true,
            batching: true,
            max_batch: 32,
        }
    }
}

/// A query against a named catalog graph.
#[derive(Debug, Clone)]
pub enum Query {
    /// All-pairs RPQ: every `(u, v)` connected by a word of the regex.
    Rpq(String),
    /// Single-source RPQ: vertices reachable from `source`. The form
    /// the scheduler batches.
    RpqFromSource {
        /// Regex text.
        text: String,
        /// Bound source vertex.
        source: u32,
    },
    /// CFPQ (Azimov's matrix algorithm): every `(u, v)` connected by a
    /// path deriving the grammar's start nonterminal.
    Cfpq(String),
    /// Transitive closure of the unlabeled adjacency.
    Closure,
    /// Transitive closure via SCC condensation: the planner fetches the
    /// pinned version's cached condensation from the catalog, runs the
    /// fused fixpoint on the component DAG, and expands back through
    /// the component map. Answers are bit-identical to
    /// [`Query::Closure`]; the device only ever runs the DAG-sized
    /// fixpoint.
    ClosureCondensed,
    /// Graph mutation: apply an edge-update batch, producing the next
    /// version. Rides the same admission queue as queries; admitted
    /// reads keep their pinned version regardless of interleaving.
    Update(UpdateBatch),
}

/// A completed query's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResult {
    /// Vertex pairs (all-pairs forms).
    Pairs(Vec<(u32, u32)>),
    /// Reachable vertices (single-source form).
    Reachable(Vec<u32>),
    /// The version an update batch produced.
    Applied(u64),
}

/// Per-request observability, measured by the serving worker.
#[derive(Debug, Clone, Default)]
pub struct RequestMetrics {
    /// Submit → dequeue.
    pub queue_wait: Duration,
    /// Submit → completion.
    pub latency: Duration,
    /// Kernel launches this request's execution performed (for a
    /// coalesced batch: the batch's launches, shared by its members —
    /// the whole point of batching is that this is *not* additive).
    pub launches: u64,
    /// Host→device bytes moved during execution (shared for a batch).
    pub h2d_bytes: u64,
    /// How many requests ran in the same batched execution (1 = solo).
    pub batch_size: u32,
    /// Grid slot of the device that served the request.
    pub device: usize,
    /// Graph version the request observed: the version pinned at
    /// submission for reads, the version produced for updates (0 when
    /// an update fails before producing one).
    pub version: u64,
}

/// Result + metrics handed to the ticket holder.
#[derive(Debug)]
pub struct Completed {
    /// The answer, or the typed failure.
    pub result: Result<QueryResult, EngineError>,
    /// Serving measurements.
    pub metrics: RequestMetrics,
}

struct TicketSlot {
    done: Mutex<Option<Completed>>,
    cv: Condvar,
}

/// Handle to an admitted request. Await with [`Ticket::wait`]; drop to
/// fire-and-forget (the request still runs).
pub struct Ticket {
    slot: Arc<TicketSlot>,
    token: StopToken,
}

impl Ticket {
    /// Block until the request completes.
    pub fn wait(self) -> Completed {
        let mut done = self.slot.done.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(completed) = done.take() {
                return completed;
            }
            done = self.slot.cv.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Request cooperative cancellation: takes effect before execution
    /// starts, or (for non-batched requests) at the next kernel-launch
    /// boundary mid-execution.
    pub fn cancel(&self) {
        self.token.cancel();
    }
}

enum Payload {
    RpqAllPairs,
    RpqFromSource(u32),
    Cfpq,
    Closure,
    ClosureCondensed,
    Update(UpdateBatch),
}

/// Stable name for span labels.
fn payload_name(p: &Payload) -> &'static str {
    match p {
        Payload::RpqAllPairs => "rpq",
        Payload::RpqFromSource(_) => "rpq_from_source",
        Payload::Cfpq => "cfpq",
        Payload::Closure => "closure",
        Payload::ClosureCondensed => "closure_condensed",
        Payload::Update(_) => "update",
    }
}

struct PendingRequest {
    graph: String,
    plan: Arc<Plan>,
    payload: Payload,
    token: StopToken,
    has_deadline: bool,
    submitted: Instant,
    slot: Arc<TicketSlot>,
    /// Version pinned at submission — `Some` for reads (released in
    /// `finish`), `None` for updates (they act on the latest version).
    version: Option<u64>,
}

struct SchedState {
    queue: VecDeque<PendingRequest>,
    shutdown: bool,
    depth_hwm: usize,
}

/// Registry-owned engine accounting: every cell lives in the global
/// [`spbla_obs::MetricsRegistry`] under
/// `spbla_engine_*{engine="<id>"}`, so `EngineStats` is a *view* over
/// the same values Prometheus/JSON exports see — no parallel
/// bookkeeping that can drift. Each engine gets a process-unique id so
/// engines constructed back-to-back (the E12 sweep) never alias.
struct EngineMetrics {
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    rejected_interactive: Counter,
    rejected_batch: Counter,
    deadline_exceeded: Counter,
    cancelled: Counter,
    failed: Counter,
    updates_applied: Counter,
    batches: Counter,
    batched_requests: Counter,
    queue_depth_hwm: Gauge,
    queue_wait_us: Histogram,
    latency_us: Histogram,
    request_launches: Histogram,
    plan_hits: Counter,
    plan_misses: Counter,
    residency_hits: Counter,
    residency_misses: Counter,
    residency_evictions: Counter,
}

static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

impl EngineMetrics {
    fn register() -> EngineMetrics {
        let id = NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed).to_string();
        let reg = metrics_global();
        let labels = [("engine", id.as_str())];
        let counter = |family: &str| reg.counter(&labeled(family, &labels));
        EngineMetrics {
            submitted: counter("spbla_engine_submitted_total"),
            completed: counter("spbla_engine_completed_total"),
            rejected: counter("spbla_engine_rejected_total"),
            rejected_interactive: reg.counter(&labeled(
                "spbla_engine_rejections_total",
                &[("engine", id.as_str()), ("tier", "interactive")],
            )),
            rejected_batch: reg.counter(&labeled(
                "spbla_engine_rejections_total",
                &[("engine", id.as_str()), ("tier", "batch")],
            )),
            deadline_exceeded: counter("spbla_engine_deadline_exceeded_total"),
            cancelled: counter("spbla_engine_cancelled_total"),
            failed: counter("spbla_engine_failed_total"),
            updates_applied: counter("spbla_engine_updates_total"),
            batches: counter("spbla_engine_batches_total"),
            batched_requests: counter("spbla_engine_batched_requests_total"),
            queue_depth_hwm: reg.gauge(&labeled("spbla_engine_queue_depth_hwm", &labels)),
            queue_wait_us: reg.histogram(&labeled("spbla_engine_queue_wait_us", &labels)),
            latency_us: reg.histogram(&labeled("spbla_engine_latency_us", &labels)),
            request_launches: reg.histogram(&labeled("spbla_engine_request_launches", &labels)),
            plan_hits: counter("spbla_engine_plan_hits_total"),
            plan_misses: counter("spbla_engine_plan_misses_total"),
            residency_hits: counter("spbla_engine_residency_hits_total"),
            residency_misses: counter("spbla_engine_residency_misses_total"),
            residency_evictions: counter("spbla_engine_residency_evictions_total"),
        }
    }
}

struct EngineInner {
    grid: DeviceGrid,
    catalog: Catalog,
    planner: Planner,
    table: Mutex<SymbolTable>,
    config: EngineConfig,
    state: Mutex<SchedState>,
    available: Condvar,
    metrics: EngineMetrics,
    in_flight: AtomicUsize,
}

/// Engine-wide observability snapshot.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests bounced by admission control ([`EngineError::Overloaded`]).
    pub rejected: u64,
    /// Rejections of interactive-tier requests.
    pub rejected_interactive: u64,
    /// Rejections of batch-tier requests (fires earlier: the batch
    /// tier's admission limit is a fraction of the queue).
    pub rejected_batch: u64,
    /// Requests that missed their deadline.
    pub deadline_exceeded: u64,
    /// Requests cancelled by their ticket holder.
    pub cancelled: u64,
    /// Requests that failed in execution.
    pub failed: u64,
    /// Update batches applied through the serving path (each produced
    /// a new graph version).
    pub updates_applied: u64,
    /// Plan-cache hits.
    pub plan_hits: u64,
    /// Plan-cache misses (compilations).
    pub plan_misses: u64,
    /// Catalog residency hits.
    pub residency_hits: u64,
    /// Catalog residency misses (uploads).
    pub residency_misses: u64,
    /// Catalog LRU evictions.
    pub residency_evictions: u64,
    /// High-water mark of the admission-queue depth.
    pub queue_depth_hwm: usize,
    /// Coalesced multi-source executions (batch size ≥ 2).
    pub batches: u64,
    /// Requests served inside those coalesced executions.
    pub batched_requests: u64,
    /// Per-device counters, in grid-slot order.
    pub devices: Vec<DeviceStats>,
}

/// The multi-tenant query engine. Owns a [`DeviceGrid`] and serves
/// RPQ / CFPQ / closure requests concurrently; see the module docs.
pub struct Engine {
    inner: Arc<EngineInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Spin up one worker per grid device.
    pub fn new(grid: DeviceGrid, config: EngineConfig) -> Engine {
        let budget = config.residency_budget.unwrap_or_else(|| {
            (0..grid.len())
                .map(|i| grid.device(i).config().memory_capacity / 2)
                .min()
                .unwrap_or(4 << 30)
        });
        let n = grid.len();
        let metrics = EngineMetrics::register();
        let inner = Arc::new(EngineInner {
            catalog: Catalog::with_counters(
                n,
                budget,
                metrics.residency_hits.clone(),
                metrics.residency_misses.clone(),
                metrics.residency_evictions.clone(),
            ),
            planner: Planner::with_counters(
                config.plan_cache,
                metrics.plan_hits.clone(),
                metrics.plan_misses.clone(),
            ),
            table: Mutex::new(SymbolTable::new()),
            config,
            grid,
            state: Mutex::new(SchedState {
                queue: VecDeque::new(),
                shutdown: false,
                depth_hwm: 0,
            }),
            available: Condvar::new(),
            metrics,
            in_flight: AtomicUsize::new(0),
        });
        let workers = (0..n)
            .map(|dev| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("spbla-engine-{dev}"))
                    .spawn(move || worker_loop(&inner, dev))
                    .expect("engine worker spawns")
            })
            .collect();
        Engine { inner, workers }
    }

    /// Register a named graph, building it against the engine's shared
    /// symbol table so query labels and graph labels agree.
    pub fn add_graph_with(&self, name: &str, build: impl FnOnce(&mut SymbolTable) -> LabeledGraph) {
        let graph = {
            let mut table = self.inner.table.lock().unwrap_or_else(|e| e.into_inner());
            build(&mut table)
        };
        self.add_graph(name, graph);
    }

    /// Register a named graph built elsewhere. The graph's labels must
    /// have been interned through this engine's symbol table (see
    /// [`Engine::with_symbols`]) or queries will not match them.
    pub fn add_graph(&self, name: &str, graph: LabeledGraph) {
        self.inner.catalog.add(name, graph);
    }

    /// Register a graph whose version history starts at `version`
    /// instead of 0 — the recovery path: a restored checkpoint resumes
    /// numbering where the crashed process stopped, so replayed tail
    /// batches reproduce the exact pre-crash version sequence.
    pub fn add_graph_at_version(&self, name: &str, graph: LabeledGraph, version: u64) {
        self.inner.catalog.add_at_version(name, graph, version);
    }

    /// The latest host-resident state of a registered graph (the
    /// durability layer checkpoints from this).
    pub fn host_graph(&self, name: &str) -> Result<Arc<LabeledGraph>, EngineError> {
        self.inner.catalog.host_graph(name)
    }

    /// Run `f` against the engine's symbol table (e.g. to pre-intern or
    /// resolve label names).
    pub fn with_symbols<R>(&self, f: impl FnOnce(&mut SymbolTable) -> R) -> R {
        let mut table = self.inner.table.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut table)
    }

    /// Registered graph names.
    pub fn graph_names(&self) -> Vec<String> {
        self.inner.catalog.names()
    }

    /// Submit a query with no deadline.
    pub fn submit(&self, graph: &str, query: Query) -> Result<Ticket, EngineError> {
        self.submit_with_deadline(graph, query, None)
    }

    /// Submit a query; with `Some(budget)` the request fails typed
    /// ([`EngineError::DeadlineExceeded`]) once `budget` elapses,
    /// whether it is still queued or between kernel launches.
    /// Non-blocking: planning happens on the caller thread, then the
    /// request is enqueued or rejected immediately.
    pub fn submit_with_deadline(
        &self,
        graph: &str,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<Ticket, EngineError> {
        self.submit_tiered(graph, query, QosTier::Interactive, deadline)
    }

    /// Submit under an explicit QoS tier: interactive requests may fill
    /// the whole admission queue, batch requests bounce once the queue
    /// passes [`EngineConfig::batch_admission_fraction`] of capacity.
    pub fn submit_tiered(
        &self,
        graph: &str,
        query: Query,
        tier: QosTier,
        deadline: Option<Duration>,
    ) -> Result<Ticket, EngineError> {
        let inner = &self.inner;
        // Fail fast on unknown graphs — before planning or queueing.
        inner.catalog.host_graph(graph)?;
        let trace = trace_global();
        let plan_start = trace.now_ns();
        let (plan, payload) = match query {
            Query::Rpq(ref text) => (
                inner.planner.plan_rpq(text, &inner.table)?,
                Payload::RpqAllPairs,
            ),
            Query::RpqFromSource { ref text, source } => (
                inner.planner.plan_rpq(text, &inner.table)?,
                Payload::RpqFromSource(source),
            ),
            Query::Cfpq(ref grammar) => (
                inner.planner.plan_cfpq(grammar, &inner.table)?,
                Payload::Cfpq,
            ),
            Query::Closure => (inner.planner.plan_closure()?, Payload::Closure),
            Query::ClosureCondensed => (
                inner.planner.plan_closure_condensed()?,
                Payload::ClosureCondensed,
            ),
            Query::Update(batch) => (inner.planner.plan_update()?, Payload::Update(batch)),
        };
        trace.leaf(
            format!("plan:{}", payload_name(&payload)),
            "phase",
            0,
            plan_start,
            trace.now_ns().saturating_sub(plan_start),
            &[],
        );
        // Reads pin the version current at admission: however many
        // update batches land while this request queues, it reads a
        // consistent snapshot. Updates act on whatever is latest when
        // they execute, so they pin nothing.
        let version = match payload {
            Payload::Update(_) => None,
            _ => Some(inner.catalog.pin_latest(graph)?),
        };
        let unpin = |inner: &EngineInner| {
            if let Some(v) = version {
                inner.catalog.unpin(graph, v);
            }
        };
        let token = match deadline {
            Some(budget) => StopToken::with_deadline(budget),
            None => StopToken::new(),
        };
        let slot = Arc::new(TicketSlot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let request = PendingRequest {
            graph: graph.to_string(),
            plan,
            payload,
            token: token.clone(),
            has_deadline: deadline.is_some(),
            submitted: Instant::now(),
            slot: Arc::clone(&slot),
            version,
        };
        {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.shutdown {
                drop(st);
                unpin(inner);
                return Err(EngineError::ShuttingDown);
            }
            let capacity = inner.config.queue_capacity;
            let limit = match tier {
                QosTier::Interactive => capacity,
                QosTier::Batch => ((capacity as f64
                    * inner.config.batch_admission_fraction.clamp(0.0, 1.0))
                    as usize)
                    .max(1),
            };
            if st.queue.len() >= limit {
                let depth = st.queue.len();
                inner.metrics.rejected.inc(1);
                match tier {
                    QosTier::Interactive => inner.metrics.rejected_interactive.inc(1),
                    QosTier::Batch => inner.metrics.rejected_batch.inc(1),
                }
                drop(st);
                unpin(inner);
                return Err(EngineError::Overloaded {
                    depth,
                    capacity: limit,
                    tier,
                });
            }
            st.queue.push_back(request);
            st.depth_hwm = st.depth_hwm.max(st.queue.len());
            inner.metrics.queue_depth_hwm.fetch_max(st.depth_hwm as u64);
            inner.metrics.submitted.inc(1);
        }
        inner.available.notify_one();
        Ok(Ticket { slot, token })
    }

    /// The latest version number of a registered graph.
    pub fn graph_version(&self, name: &str) -> Result<u64, EngineError> {
        self.inner.catalog.current_version(name)
    }

    /// Apply an update batch and block until it lands, returning the
    /// version it produced. Convenience over
    /// `submit(name, Query::Update(batch))` + [`Ticket::wait`].
    pub fn apply_batch(&self, name: &str, batch: UpdateBatch) -> Result<u64, EngineError> {
        let ticket = self.submit(name, Query::Update(batch))?;
        match ticket.wait().result? {
            QueryResult::Applied(v) => Ok(v),
            other => Err(EngineError::PlanError(format!(
                "update produced an unexpected result: {other:?}"
            ))),
        }
    }

    /// Engine-wide counters plus per-device stats. A thin view over the
    /// engine's registry-owned cells: every number here equals what the
    /// global metrics exporters report for this engine's label.
    pub fn stats(&self) -> EngineStats {
        let inner = &self.inner;
        let m = &inner.metrics;
        EngineStats {
            submitted: m.submitted.get(),
            completed: m.completed.get(),
            rejected: m.rejected.get(),
            rejected_interactive: m.rejected_interactive.get(),
            rejected_batch: m.rejected_batch.get(),
            deadline_exceeded: m.deadline_exceeded.get(),
            cancelled: m.cancelled.get(),
            failed: m.failed.get(),
            updates_applied: m.updates_applied.get(),
            plan_hits: m.plan_hits.get(),
            plan_misses: m.plan_misses.get(),
            residency_hits: m.residency_hits.get(),
            residency_misses: m.residency_misses.get(),
            residency_evictions: m.residency_evictions.get(),
            queue_depth_hwm: m.queue_depth_hwm.get() as usize,
            batches: m.batches.get(),
            batched_requests: m.batched_requests.get(),
            devices: inner.grid.stats(),
        }
    }

    /// Process-wide device ordinals of this engine's grid, in slot
    /// order — the keys under which the devices' counters appear in the
    /// global metrics registry (`spbla_dev_*{dev="<ordinal>"}`).
    pub fn device_ordinals(&self) -> Vec<u64> {
        (0..self.inner.grid.len())
            .map(|i| self.inner.grid.device(i).ordinal())
            .collect()
    }

    /// Number of devices the engine serves over.
    pub fn n_devices(&self) -> usize {
        self.inner.grid.len()
    }

    /// Drain the queue, stop the workers, and return the final stats.
    /// Every admitted request is served before shutdown completes.
    pub fn shutdown(mut self) -> EngineStats {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.shutdown = true;
        drop(st);
        self.inner.available.notify_all();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(inner: &Arc<EngineInner>, dev: usize) {
    loop {
        let batch = {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(first) = st.queue.pop_front() {
                    break collect_batch(inner, &mut st, first);
                }
                if st.shutdown {
                    return;
                }
                st = inner.available.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        inner.in_flight.fetch_add(1, Ordering::Relaxed);
        execute(inner, dev, batch);
        inner.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Sweep the queue for requests coalescible with `first`: deadline-less
/// single-source RPQs on the same graph and canonical plan key. Key
/// equality (not `Arc` identity) keeps batching effective even with the
/// plan cache ablated off.
fn collect_batch(
    inner: &EngineInner,
    st: &mut SchedState,
    first: PendingRequest,
) -> Vec<PendingRequest> {
    let batchable = inner.config.batching
        && !first.has_deadline
        && matches!(first.payload, Payload::RpqFromSource(_));
    let mut batch = vec![first];
    if !batchable {
        return batch;
    }
    let mut i = 0;
    while i < st.queue.len() && batch.len() < inner.config.max_batch {
        let candidate = &st.queue[i];
        // An already-cancelled candidate is left in the queue: sweeping
        // it into the batch would either run work nobody wants or (the
        // old bug) attribute the batch's launch/byte deltas to a ticket
        // that reports `Cancelled`. Its own dequeue finishes it with
        // zero deltas.
        let matches = !candidate.has_deadline
            && matches!(candidate.payload, Payload::RpqFromSource(_))
            && candidate.graph == batch[0].graph
            && candidate.plan.key == batch[0].plan.key
            && candidate.version == batch[0].version
            && candidate.token.should_stop().is_none();
        if matches {
            batch.push(st.queue.remove(i).expect("index in bounds"));
        } else {
            i += 1;
        }
    }
    batch
}

fn execute(inner: &EngineInner, dev: usize, mut batch: Vec<PendingRequest>) {
    let dequeued = Instant::now();
    let device = inner.grid.device(dev).clone();
    let inst = inner.grid.instance(dev).clone();
    let before = device.stats();

    // Requests cancelled (or expired) while queued finish without
    // touching the device.
    batch.retain(|req| match req.token.should_stop() {
        Some(e) => {
            finish(
                inner,
                req,
                Err(EngineError::from_exec(e.into())),
                &before,
                &before,
                dequeued,
                1,
                dev,
            );
            false
        }
        None => true,
    });
    if batch.is_empty() {
        return;
    }

    if batch.len() > 1 {
        execute_coalesced(inner, dev, &inst, batch, &before, dequeued, &device);
        return;
    }

    let req = batch.pop().expect("one request");
    let mut span = trace_global().span(
        format!("request:{}", payload_name(&req.payload)),
        "request",
        device.ordinal(),
    );
    if let Some(span) = span.as_mut() {
        span.arg(
            "queue_wait_us",
            dequeued.duration_since(req.submitted).as_micros() as u64,
        );
        span.arg("batch_size", 1);
    }
    // Arm the request's token for the duration of execution: fixpoints
    // observe it between launches. Cleared before the ticket fires so
    // the device returns to the pool unarmed.
    device.install_stop_token(req.token.clone());
    let result = run_one(inner, dev, &inst, &req);
    device.clear_stop_token();
    let after = device.stats();
    drop(span);
    finish(inner, &req, result, &before, &after, dequeued, 1, dev);
}

fn execute_coalesced(
    inner: &EngineInner,
    dev: usize,
    inst: &Instance,
    batch: Vec<PendingRequest>,
    before: &DeviceStats,
    dequeued: Instant,
    device: &spbla_gpu_sim::Device,
) {
    // Re-check every member's token at the execution boundary: a
    // request cancelled *after* being coalesced must neither run nor
    // receive the batch's launch/byte deltas — it finishes typed, with
    // zero deltas, and its source is excluded so the survivors' metrics
    // reflect only work actually done for them.
    let (batch, stopped): (Vec<_>, Vec<_>) = batch
        .into_iter()
        .partition(|req| req.token.should_stop().is_none());
    for req in &stopped {
        let e = req.token.should_stop().expect("partitioned as stopped");
        finish(
            inner,
            req,
            Err(EngineError::from_exec(e.into())),
            before,
            before,
            dequeued,
            1,
            dev,
        );
    }
    if batch.is_empty() {
        return;
    }
    if batch.len() > 1 {
        inner.metrics.batches.inc(1);
        inner.metrics.batched_requests.inc(batch.len() as u64);
    }
    let mut span = trace_global().span("request:rpq_batch", "request", device.ordinal());
    if let Some(span) = span.as_mut() {
        span.arg("batch_size", batch.len() as u64);
        span.arg(
            "queue_wait_us",
            dequeued.duration_since(batch[0].submitted).as_micros() as u64,
        );
    }
    let sources: Vec<u32> = batch
        .iter()
        .map(|req| match req.payload {
            Payload::RpqFromSource(s) => s,
            _ => unreachable!("collect_batch only coalesces single-source RPQs"),
        })
        .collect();
    let PlanKind::Rpq(nfa) = &batch[0].plan.kind else {
        unreachable!("single-source payload implies an RPQ plan")
    };
    let version = batch[0].version.expect("reads always pin a version");
    let outcome = inner
        .catalog
        .resident_at(&batch[0].graph, version, dev, inst)
        .and_then(|resident| {
            // Small batches skip the b×n product machine: each source
            // runs the sparse-vector frontier path (push/pull selected
            // per round), which answers bit-identically.
            if sources.len() <= FRONTIER_MAX_SOURCES {
                sources
                    .iter()
                    .map(|&s| {
                        rpq_from_sources_mats(
                            &resident.labels,
                            resident.n_vertices,
                            nfa,
                            &[s],
                            inst,
                        )
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(EngineError::from_exec)
            } else {
                rpq_from_each_source_mats(
                    &resident.labels,
                    resident.n_vertices,
                    nfa,
                    &sources,
                    inst,
                )
                .map_err(EngineError::from_exec)
            }
        });
    let after = device.stats();
    drop(span);
    let size = batch.len() as u32;
    match outcome {
        Ok(rows) => {
            for (req, row) in batch.iter().zip(rows) {
                finish(
                    inner,
                    req,
                    Ok(QueryResult::Reachable(row)),
                    before,
                    &after,
                    dequeued,
                    size,
                    dev,
                );
            }
        }
        Err(e) => {
            for req in &batch {
                finish(
                    inner,
                    req,
                    Err(clone_error(&e)),
                    before,
                    &after,
                    dequeued,
                    size,
                    dev,
                );
            }
        }
    }
}

/// Duplicate a batch-wide error for each member (the underlying device
/// and core errors are `Clone`; the engine-level wrappers are rebuilt).
fn clone_error(e: &EngineError) -> EngineError {
    match e {
        EngineError::Overloaded {
            depth,
            capacity,
            tier,
        } => EngineError::Overloaded {
            depth: *depth,
            capacity: *capacity,
            tier: *tier,
        },
        EngineError::DeadlineExceeded {
            elapsed_ms,
            budget_ms,
        } => EngineError::DeadlineExceeded {
            elapsed_ms: *elapsed_ms,
            budget_ms: *budget_ms,
        },
        EngineError::Cancelled => EngineError::Cancelled,
        EngineError::UnknownGraph(name) => EngineError::UnknownGraph(name.clone()),
        EngineError::PlanError(msg) => EngineError::PlanError(msg.clone()),
        EngineError::ShuttingDown => EngineError::ShuttingDown,
        EngineError::Exec(e) => EngineError::Exec(e.clone()),
    }
}

fn run_one(
    inner: &EngineInner,
    dev: usize,
    inst: &Instance,
    req: &PendingRequest,
) -> Result<QueryResult, EngineError> {
    let version = req.version;
    let pinned = || version.expect("reads always pin a version");
    match (&req.plan.kind, &req.payload) {
        (PlanKind::Rpq(nfa), Payload::RpqAllPairs) => {
            let resident = inner.catalog.resident_at(&req.graph, pinned(), dev, inst)?;
            rpq_all_pairs_mats(&resident.labels, resident.n_vertices, nfa, inst)
                .map(QueryResult::Pairs)
                .map_err(EngineError::from_exec)
        }
        (PlanKind::Rpq(nfa), Payload::RpqFromSource(source)) => {
            // A lone source is always under FRONTIER_MAX_SOURCES: run
            // the vector frontier path, not the product machine.
            let resident = inner.catalog.resident_at(&req.graph, pinned(), dev, inst)?;
            rpq_from_sources_mats(&resident.labels, resident.n_vertices, nfa, &[*source], inst)
                .map(QueryResult::Reachable)
                .map_err(EngineError::from_exec)
        }
        (PlanKind::Cfpq(cnf), Payload::Cfpq) => {
            // Azimov's fixpoint uploads its nonterminal matrices itself;
            // it runs from the pinned host version, not the residency.
            let host = inner.catalog.host_graph_at(&req.graph, pinned())?;
            AzimovIndex::build(&host, cnf, inst, &AzimovOptions::default())
                .map(|idx| {
                    let mut pairs = idx.reachable_pairs();
                    pairs.sort_unstable();
                    pairs.dedup();
                    QueryResult::Pairs(pairs)
                })
                .map_err(EngineError::from_exec)
        }
        (PlanKind::Closure, Payload::Closure) => {
            let resident = inner.catalog.resident_at(&req.graph, pinned(), dev, inst)?;
            closure_delta(&resident.adjacency)
                .map(|c| {
                    let mut pairs = c.read();
                    pairs.sort_unstable();
                    QueryResult::Pairs(pairs)
                })
                .map_err(EngineError::from_exec)
        }
        (PlanKind::ClosureCondensed, Payload::ClosureCondensed) => {
            // Preprocessing stage: the condensation is computed once
            // per (graph, version) and cached in the catalog; the
            // DAG-sized fixpoint runs on this worker's device.
            let cond = inner.catalog.condensation_at(&req.graph, pinned())?;
            spbla_prep::condensed_closure_with(inst, &cond)
                .map(|(c, _)| {
                    let mut pairs = c.read();
                    pairs.sort_unstable();
                    QueryResult::Pairs(pairs)
                })
                .map_err(EngineError::from_exec)
        }
        (PlanKind::Update, Payload::Update(batch)) => {
            // Serialised by the catalog's host lock: concurrent workers
            // can both be here and neither loses its batch.
            inner
                .catalog
                .apply_batch(&req.graph, batch)
                .map(QueryResult::Applied)
                .inspect(|_| inner.metrics.updates_applied.inc(1))
        }
        _ => unreachable!("payload always matches its plan kind"),
    }
}

#[allow(clippy::too_many_arguments)]
fn finish(
    inner: &EngineInner,
    req: &PendingRequest,
    result: Result<QueryResult, EngineError>,
    before: &DeviceStats,
    after: &DeviceStats,
    dequeued: Instant,
    batch_size: u32,
    dev: usize,
) {
    match &result {
        Ok(_) => inner.metrics.completed.inc(1),
        Err(EngineError::DeadlineExceeded { .. }) => inner.metrics.deadline_exceeded.inc(1),
        Err(EngineError::Cancelled) => inner.metrics.cancelled.inc(1),
        Err(_) => inner.metrics.failed.inc(1),
    };
    // The request is done with its snapshot: release the pin so pruning
    // and eviction can reclaim the version. Updates pinned nothing.
    if let Some(v) = req.version {
        inner.catalog.unpin(&req.graph, v);
    }
    let version = match (&result, req.version) {
        (_, Some(v)) => v,
        (Ok(QueryResult::Applied(v)), None) => *v,
        _ => 0,
    };
    let queue_wait = dequeued.duration_since(req.submitted);
    let latency = req.submitted.elapsed();
    let launches = after.launches - before.launches;
    inner
        .metrics
        .queue_wait_us
        .observe(queue_wait.as_micros() as u64);
    inner.metrics.latency_us.observe(latency.as_micros() as u64);
    inner.metrics.request_launches.observe(launches);
    let completed = Completed {
        result,
        metrics: RequestMetrics {
            queue_wait,
            latency,
            launches,
            h2d_bytes: after.h2d_bytes - before.h2d_bytes,
            batch_size,
            device: dev,
            version,
        },
    };
    let mut done = req.slot.done.lock().unwrap_or_else(|e| e.into_inner());
    *done = Some(completed);
    req.slot.cv.notify_all();
}
