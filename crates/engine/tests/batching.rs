//! Deterministic same-plan batching: block the single worker with a
//! slow closure, queue eight identical-plan single-source RPQs behind
//! it, and check they coalesce into one multi-source execution whose
//! kernel-launch count beats the unbatched run of the same workload.

use spbla_engine::{Engine, EngineConfig, EngineStats, Query, QueryResult};
use spbla_graph::LabeledGraph;
use spbla_multidev::DeviceGrid;

const N_SINGLES: u32 = 8;

fn run(batching: bool) -> (Vec<Vec<u32>>, Vec<u32>, EngineStats) {
    run_n(batching, N_SINGLES)
}

fn run_n(batching: bool, n_singles: u32) -> (Vec<Vec<u32>>, Vec<u32>, EngineStats) {
    let engine = Engine::new(
        DeviceGrid::new(1),
        EngineConfig {
            batching,
            ..EngineConfig::default()
        },
    );
    // A long chain whose closure keeps the worker busy far longer than
    // the submissions below take, so the singles pile up in the queue.
    engine.add_graph_with("blocker", |table| {
        let e = table.intern("e");
        LabeledGraph::from_triples(400, (0..399).map(|i| (i, e, i + 1)))
    });
    // A small chain the single-source RPQs run on.
    engine.add_graph_with("chain", |table| {
        let a = table.intern("a");
        LabeledGraph::from_triples(64, (0..63).map(|i| (i, a, i + 1)))
    });

    let blocker = engine.submit("blocker", Query::Closure).unwrap();
    let singles: Vec<_> = (0..n_singles)
        .map(|i| {
            engine
                .submit(
                    "chain",
                    Query::RpqFromSource {
                        text: "a*".into(),
                        source: i * 7,
                    },
                )
                .unwrap()
        })
        .collect();

    blocker.wait().result.expect("closure completes");
    let mut rows = Vec::new();
    let mut sizes = Vec::new();
    for ticket in singles {
        let done = ticket.wait();
        sizes.push(done.metrics.batch_size);
        match done.result.expect("single-source RPQ completes") {
            QueryResult::Reachable(r) => rows.push(r),
            other => panic!("expected Reachable, got {other:?}"),
        }
    }
    let stats = engine.shutdown();
    (rows, sizes, stats)
}

#[test]
fn batching_coalesces_and_reduces_launches() {
    let (rows_on, sizes_on, stats_on) = run(true);
    let (rows_off, sizes_off, stats_off) = run(false);

    // Same answers either way.
    assert_eq!(rows_on, rows_off);
    for (i, row) in rows_on.iter().enumerate() {
        let src = i as u32 * 7;
        assert_eq!(row, &(src..64).collect::<Vec<u32>>());
    }

    // All eight queued singles ran as one coalesced execution.
    assert_eq!(stats_on.batches, 1, "{stats_on:?}");
    assert_eq!(stats_on.batched_requests, u64::from(N_SINGLES));
    assert!(sizes_on.iter().all(|&s| s == N_SINGLES), "{sizes_on:?}");

    // Ablated off: every request its own execution.
    assert_eq!(stats_off.batches, 0);
    assert!(sizes_off.iter().all(|&s| s == 1), "{sizes_off:?}");

    // The coalesced run does one launch chain instead of eight.
    let launches = |s: &EngineStats| s.devices.iter().map(|d| d.launches).sum::<u64>();
    assert!(
        launches(&stats_on) < launches(&stats_off),
        "batched {} launches, unbatched {}",
        launches(&stats_on),
        launches(&stats_off)
    );
}

/// A coalesced batch at or under `FRONTIER_MAX_SOURCES` routes each
/// source through the vector frontier path instead of the `b × n`
/// product machine — the answers must be bit-identical to both the
/// unbatched run and the closed form. (The 8-source test above covers
/// the product-machine side of the same equivalence.)
#[test]
fn small_batches_take_the_frontier_path_bit_identically() {
    let n = 3; // ≤ FRONTIER_MAX_SOURCES
    let (rows_on, sizes_on, stats_on) = run_n(true, n);
    let (rows_off, _, _) = run_n(false, n);
    assert_eq!(rows_on, rows_off);
    for (i, row) in rows_on.iter().enumerate() {
        let src = i as u32 * 7;
        assert_eq!(row, &(src..64).collect::<Vec<u32>>());
    }
    // The three queued singles still coalesced into one execution.
    assert_eq!(stats_on.batches, 1, "{stats_on:?}");
    assert!(sizes_on.iter().all(|&s| s == n), "{sizes_on:?}");
}
