//! Observability: tracing and metrics for the simulated GPGPU stack.
//!
//! Everything the paper's evaluation counts — kernel launches, transfer
//! bytes, accumulator insertions, request latencies — flows through the
//! two facilities in this crate:
//!
//! * a [`MetricsRegistry`] of named counters, gauges and log₂-bucket
//!   histograms, exportable as Prometheus text or JSON. The simulated
//!   devices own their counters *inside* the registry, so
//!   `DeviceStats`-style snapshots are views over registry values, not a
//!   parallel bookkeeping scheme that can drift;
//! * a [`Trace`] ring buffer of spans with parent/child ids, recording
//!   each kernel launch, transfer and engine request so a request's full
//!   kernel tree is reconstructable (and loadable in `chrome://tracing`
//!   via [`Trace::render_chrome_json`]).
//!
//! Both are deliberately dependency-free (std only) so they can sit at
//! the very bottom of the workspace dependency graph, below `gpu-sim`.
//!
//! # Cost discipline
//!
//! Counters and histograms are lock-free atomics; the registry mutex is
//! only taken when a handle is first resolved by name (call sites cache
//! handles). The trace fast path is a single relaxed atomic load when
//! disabled — enabling tracing is opt-in per process ([`trace_global`]
//! starts disabled), so steady-state kernels pay nothing for it.
//!
//! # Naming scheme
//!
//! Metric names follow Prometheus conventions with inline labels:
//! `family{key="value",...}`. The families this workspace emits:
//!
//! * `spbla_dev_*{dev="N"}` — per-device counters/gauges (launches,
//!   blocks, h2d/d2h/d2d bytes, accumulator insertions, allocations,
//!   bytes in use, peak bytes), `N` the process-wide device ordinal;
//! * `spbla_kernel_*{backend="B",kernel="K"}` — per-backend per-kernel
//!   histograms (rows, nnz in/out, insertions, duration);
//! * `spbla_engine_*` — serving-engine request accounting.

mod metrics;
mod trace;

pub use metrics::{
    metrics_global, Counter, Gauge, Histogram, HistogramSnapshot, MetricKind, MetricSample,
    MetricsRegistry, SampleValue,
};
pub use trace::{trace_global, SpanGuard, SpanRecord, Trace, TraceSnapshot};

/// Escape a string for inclusion inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Build a labeled metric name: `family{k1="v1",k2="v2"}`.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_names() {
        assert_eq!(labeled("f", &[]), "f");
        assert_eq!(
            labeled("spbla_dev_launches_total", &[("dev", "3")]),
            "spbla_dev_launches_total{dev=\"3\"}"
        );
        assert_eq!(
            labeled("h", &[("a", "x"), ("b", "y")]),
            "h{a=\"x\",b=\"y\"}"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
