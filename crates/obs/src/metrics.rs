//! The metrics registry: named counters, gauges and log₂ histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json_escape;

/// A monotonically increasing counter. Cheap to clone; clones share the
/// cell, so a call site can resolve its handle once and increment
/// lock-free thereafter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn inc(&self, n: u64) {
        if n > 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable value (bytes in use, queue depth, watermarks).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (high-water marks).
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Compare-and-swap, for owners that gate updates on an invariant
    /// (the device allocator's capacity check runs directly against its
    /// registry-owned gauge so there is exactly one source of truth).
    #[inline]
    pub fn compare_exchange_weak(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.cell
            .compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[i]` counts values whose bit length is `i` — bucket 0 is
    /// exactly zero, bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`.
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A histogram over `u64` values with power-of-two buckets: constant
/// memory, lock-free observation, and quantile estimates good to a
/// factor of two (tightened by the exact max).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate (log₂-bucket upper bound, capped by `max`).
    pub p50: u64,
    /// 95th-percentile estimate (same precision).
    pub p95: u64,
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn observe(&self, v: u64) {
        let i = (u64::BITS - v.leading_zeros()) as usize;
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// observation (0 ≤ `q` ≤ 1), capped by the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot_at(q).1
    }

    fn snapshot_at(&self, q: f64) -> (u64, u64) {
        let count = self.count();
        if count == 0 {
            return (0, 0);
        }
        let max = self.inner.max.load(Ordering::Relaxed);
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.inner.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                let bound = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return (count, bound.min(max));
            }
        }
        (count, max)
    }

    /// Full snapshot with p50/p95.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.inner.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
        }
    }
}

/// What kind of metric a name resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Settable gauge.
    Gauge,
    /// Log₂-bucket histogram.
    Histogram,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A sampled metric value, as exported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// One named sample out of [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Full metric name, labels included.
    pub name: String,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// Named metrics, get-or-create by name. Handles are cheap clones of the
/// underlying cells — resolve once, then update lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry (tests; production code uses [`metrics_global`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` already names a gauge or histogram — metric names are
    /// a process-wide schema and a kind clash is a programming error.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} is a {other:?}, not a counter"),
        }
    }

    /// Get or create the gauge `name` (panics on kind clash).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} is a {other:?}, not a gauge"),
        }
    }

    /// Get or create the histogram `name` (panics on kind clash).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} is a {other:?}, not a histogram"),
        }
    }

    /// The kind registered under `name`, if any.
    pub fn kind(&self, name: &str) -> Option<MetricKind> {
        self.lock().get(name).map(|m| match m {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        })
    }

    /// Point-in-time values of every registered metric, name-sorted.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.lock()
            .iter()
            .map(|(name, m)| MetricSample {
                name: name.clone(),
                value: match m {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Snapshot restricted to names starting with `prefix` (family or
    /// family-group scans without string post-filtering at call sites).
    pub fn snapshot_prefixed(&self, prefix: &str) -> Vec<MetricSample> {
        self.snapshot()
            .into_iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    /// Prometheus text exposition. Histograms export `_count`, `_sum`
    /// and `quantile`-labeled summary samples.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for sample in self.snapshot() {
            let (family, labels) = split_labels(&sample.name);
            if family != last_family {
                let kind = match sample.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "summary",
                };
                out.push_str(&format!("# TYPE {family} {kind}\n"));
                last_family = family.to_string();
            }
            match sample.value {
                SampleValue::Counter(v) | SampleValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", family, labels));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!("{family}_count{labels} {}\n", h.count));
                    out.push_str(&format!("{family}_sum{labels} {}\n", h.sum));
                    for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("1", h.max)] {
                        let ql = with_label(labels, "quantile", q);
                        out.push_str(&format!("{family}{ql} {v}\n"));
                    }
                }
            }
        }
        out
    }

    /// JSON export: an array of `{name, type, ...}` objects.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, sample) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = json_escape(&sample.name);
            match &sample.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{v}}}"
                    ));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{v}}}"
                    ));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\
                         \"sum\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
                        h.count, h.sum, h.p50, h.p95, h.max
                    ));
                }
            }
        }
        out.push(']');
        out
    }
}

/// Split `family{labels}` into `("family", "{labels}")` (labels may be
/// empty).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => name.split_at(i),
        None => (name, ""),
    }
}

/// Insert an extra label into a (possibly empty) `{...}` suffix.
fn with_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        format!(
            "{},{key}=\"{value}\"}}",
            &labels[..labels.len() - 1] // strip trailing '}'
        )
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every layer of the workspace records into.
pub fn metrics_global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hits_total");
        c.inc(3);
        reg.counter("hits_total").inc(2); // same cell by name
        assert_eq!(c.get(), 5);

        let g = reg.gauge("depth");
        g.set(10);
        g.add(5);
        g.sub(3);
        g.fetch_max(7); // below current: no-op
        assert_eq!(g.get(), 12);
        g.fetch_max(40);
        assert_eq!(g.get(), 40);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 7, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 114);
        let s = h.snapshot();
        assert_eq!(s.max, 100);
        // Median observation is 2 → bucket [2,3] → bound 3.
        assert_eq!(s.p50, 3);
        // p95 lands in the top bucket, capped by the exact max.
        assert_eq!(s.p95, 100);
        // Empty histogram is all zeros.
        assert_eq!(
            Histogram::default().snapshot(),
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p95: 0
            }
        );
    }

    #[test]
    fn prometheus_and_json_exports() {
        let reg = MetricsRegistry::new();
        reg.counter("spbla_dev_launches_total{dev=\"0\"}").inc(4);
        reg.gauge("spbla_dev_bytes_in_use{dev=\"0\"}").set(128);
        reg.histogram("spbla_kernel_rows{kernel=\"mxm\"}")
            .observe(9);
        let prom = reg.render_prometheus();
        assert!(prom.contains("# TYPE spbla_dev_launches_total counter"));
        assert!(prom.contains("spbla_dev_launches_total{dev=\"0\"} 4"));
        assert!(prom.contains("spbla_dev_bytes_in_use{dev=\"0\"} 128"));
        assert!(prom.contains("spbla_kernel_rows_count{kernel=\"mxm\"} 1"));
        assert!(prom.contains("spbla_kernel_rows{kernel=\"mxm\",quantile=\"0.5\"} 9"));

        let json = reg.render_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"type\":\"counter\",\"value\":4"));
        assert!(json.contains("\"count\":1"));
    }

    #[test]
    fn snapshot_prefix_filters() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total").inc(1);
        reg.counter("b_total").inc(1);
        let only_a = reg.snapshot_prefixed("a_");
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a[0].name, "a_total");
    }
}
