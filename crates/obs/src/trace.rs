//! The span trace: a lock-cheap ring buffer of timed, parented spans.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json_escape;

/// One recorded span. `parent == 0` means a root span; ids are unique
/// and monotonic per [`Trace`], so `(id, parent)` edges reconstruct the
/// full tree of a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique span id (never 0).
    pub id: u64,
    /// Enclosing span's id, or 0 for a root.
    pub parent: u64,
    /// Span name (kernel, op, transfer or request label).
    pub name: Cow<'static, str>,
    /// Category: `"kernel"`, `"xfer"`, `"op"`, `"request"`, `"phase"`.
    pub cat: &'static str,
    /// Timeline track: the device ordinal for device work, 0 for host.
    pub track: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Numeric attributes (byte counts, nnz, block counts, ...).
    pub args: Vec<(&'static str, u64)>,
}

struct TraceBuf {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

/// A ring buffer of spans. Disabled by default: the fast path for every
/// instrumentation point is one relaxed atomic load. Enabling installs a
/// bounded buffer; once full, the oldest spans are dropped (and
/// counted), so tracing never grows without bound.
pub struct Trace {
    enabled: AtomicBool,
    next_id: AtomicU64,
    epoch: Instant,
    buf: Mutex<TraceBuf>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

/// Point-in-time copy of the trace contents.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Recorded spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted because the ring was full.
    pub dropped: u64,
}

thread_local! {
    /// The innermost open span on this thread — new spans parent to it.
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

impl Trace {
    /// A disabled trace with the default ring capacity.
    pub fn new() -> Self {
        Trace {
            enabled: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            epoch: Instant::now(),
            buf: Mutex::new(TraceBuf {
                spans: VecDeque::new(),
                capacity: 1 << 16,
                dropped: 0,
            }),
        }
    }

    /// Start recording into a fresh ring of `capacity` spans.
    pub fn enable(&self, capacity: usize) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        buf.spans.clear();
        buf.capacity = capacity.max(1);
        buf.dropped = 0;
        drop(buf);
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (the buffered spans remain readable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether spans are being recorded — the one-load fast path every
    /// instrumentation point checks first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Nanoseconds since the trace epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The current thread's innermost open span id (0 if none).
    pub fn current_parent(&self) -> u64 {
        CURRENT_PARENT.with(|c| c.get())
    }

    /// Open a span: allocates an id, parents it to the thread's current
    /// span, and makes it the current span until the guard drops (which
    /// records the span with its measured duration). Returns `None`
    /// when tracing is disabled — the caller pays nothing.
    pub fn span(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        track: u64,
    ) -> Option<SpanGuard<'_>> {
        if !self.is_enabled() {
            return None;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let prev = CURRENT_PARENT.with(|c| c.replace(id));
        Some(SpanGuard {
            trace: self,
            record: SpanRecord {
                id,
                parent: prev,
                name: name.into(),
                cat,
                track,
                start_ns: self.now_ns(),
                dur_ns: 0,
                args: Vec::new(),
            },
            prev_parent: prev,
        })
    }

    /// Record a leaf span after the fact (the caller measured
    /// `start_ns`/`dur_ns` itself, e.g. around a parallel kernel body).
    /// Parents to the thread's current span. No-op when disabled.
    pub fn leaf(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        track: u64,
        start_ns: u64,
        dur_ns: u64,
        args: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanRecord {
            id,
            parent: self.current_parent(),
            name: name.into(),
            cat,
            track,
            start_ns,
            dur_ns,
            args: args.to_vec(),
        });
    }

    fn push(&self, record: SpanRecord) {
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.spans.len() >= buf.capacity {
            buf.spans.pop_front();
            buf.dropped += 1;
        }
        buf.spans.push_back(record);
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        let buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        TraceSnapshot {
            spans: buf.spans.iter().cloned().collect(),
            dropped: buf.dropped,
        }
    }

    /// Number of recorded spans in `cat`.
    pub fn count_category(&self, cat: &str) -> usize {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .spans
            .iter()
            .filter(|s| s.cat == cat)
            .count()
    }

    /// Render the buffer as chrome://tracing "Trace Event Format" JSON
    /// (complete events; `ts`/`dur` in microseconds). Load the output in
    /// `chrome://tracing` or https://ui.perfetto.dev.
    pub fn render_chrome_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in snap.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\
                 \"dur\":{}.{:03},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}",
                json_escape(&s.name),
                json_escape(s.cat),
                s.start_ns / 1_000,
                s.start_ns % 1_000,
                s.dur_ns / 1_000,
                s.dur_ns % 1_000,
                s.track,
                s.id,
                s.parent,
            ));
            for (k, v) in &s.args {
                out.push_str(&format!(",\"{}\":{v}", json_escape(k)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// RAII handle for an open span; records it (with measured duration) and
/// restores the thread's previous parent on drop.
pub struct SpanGuard<'t> {
    trace: &'t Trace,
    record: SpanRecord,
    prev_parent: u64,
}

impl SpanGuard<'_> {
    /// The span's id (to parent work recorded on other threads).
    pub fn id(&self) -> u64 {
        self.record.id
    }

    /// Attach a numeric attribute.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        self.record.args.push((key, value));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        CURRENT_PARENT.with(|c| c.set(self.prev_parent));
        let mut record = std::mem::replace(
            &mut self.record,
            SpanRecord {
                id: 0,
                parent: 0,
                name: Cow::Borrowed(""),
                cat: "",
                track: 0,
                start_ns: 0,
                dur_ns: 0,
                args: Vec::new(),
            },
        );
        record.dur_ns = self.trace.now_ns().saturating_sub(record.start_ns);
        self.trace.push(record);
    }
}

static GLOBAL: OnceLock<Trace> = OnceLock::new();

/// The process-wide trace. Disabled until something (the CLI `trace`
/// subcommand, the C API, a test) calls [`Trace::enable`] on it.
pub fn trace_global() -> &'static Trace {
    GLOBAL.get_or_init(Trace::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::new();
        assert!(t.span("op", "op", 0).is_none());
        t.leaf("k", "kernel", 1, 0, 10, &[]);
        assert!(t.snapshot().spans.is_empty());
    }

    #[test]
    fn spans_nest_and_parent_ids_link() {
        let t = Trace::new();
        t.enable(64);
        {
            let outer = t.span("request", "request", 0).unwrap();
            let outer_id = outer.id();
            {
                let mut inner = t.span("mxm", "op", 1).unwrap();
                inner.arg("nnz", 42);
                t.leaf("gemm", "kernel", 1, t.now_ns(), 5, &[("blocks", 8)]);
                assert_eq!(t.current_parent(), inner.id());
            }
            assert_eq!(t.current_parent(), outer_id);
        }
        assert_eq!(t.current_parent(), 0);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 3);
        // Order of record is leaf, inner (drop), outer (drop).
        let leaf = &snap.spans[0];
        let inner = &snap.spans[1];
        let outer = &snap.spans[2];
        assert_eq!(leaf.name, "gemm");
        assert_eq!(leaf.parent, inner.id);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.args, vec![("nnz", 42)]);
        assert_eq!(leaf.args, vec![("blocks", 8)]);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Trace::new();
        t.enable(2);
        for i in 0..5u64 {
            t.leaf(format!("s{i}"), "op", 0, i, 1, &[]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.dropped, 3);
        assert_eq!(snap.spans[0].name, "s3");
        assert_eq!(snap.spans[1].name, "s4");
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let t = Trace::new();
        t.enable(16);
        {
            let mut g = t.span("closure", "op", 2).unwrap();
            g.arg("nnz_out", 7);
        }
        let json = t.render_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"closure\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("\"nnz_out\":7"));
    }

    #[test]
    fn disable_keeps_buffer_readable() {
        let t = Trace::new();
        t.enable(8);
        t.leaf("k", "kernel", 0, 0, 1, &[]);
        t.disable();
        assert!(!t.is_enabled());
        assert_eq!(t.snapshot().spans.len(), 1);
        // Re-enabling clears the ring.
        t.enable(8);
        assert!(t.snapshot().spans.is_empty());
    }
}
