//! # spbla-gpu-sim — a software-simulated GPGPU device
//!
//! SPbLA's published backends run on NVIDIA CUDA and OpenCL. This crate is
//! the substitution substrate used by the Rust reproduction: it models the
//! parts of the GPGPU execution and memory model that the paper's kernels
//! actually rely on, and executes them on a CPU work-stealing pool.
//!
//! The model:
//!
//! * a [`Device`] with a configurable amount of "global memory" and
//!   allocation accounting (current / peak bytes — the paper's memory
//!   footprint numbers are byte counts of device allocations);
//! * [`DeviceBuffer`]s, the only way to hold device data, which charge the
//!   device allocator and support explicit host↔device transfers (counted);
//! * bulk-synchronous kernel launches over a grid of blocks
//!   ([`Device::launch`]): blocks run in parallel, each block owns a
//!   disjoint slice of the output (the standard GPU sparse-kernel idiom —
//!   outputs are written at offsets precomputed by a scan, so the
//!   partitioning is faithful rather than a workaround);
//! * per-block [`BlockCtx`] with thread iteration and shared-memory
//!   scratch allocation, where each `for_threads` call is one
//!   barrier-delimited phase (`__syncthreads` boundary);
//! * Thrust-style device-wide primitives: scans, reductions, radix sort,
//!   stream compaction, gather, and merge-path partitioning.
//!
//! What is intentionally *not* modelled: warp divergence, memory
//! coalescing, and intra-block thread concurrency (threads within a block
//! execute sequentially inside a phase, which makes shared-memory hash
//! insertion deterministic). These affect constants only; the reproduction
//! targets algorithmic shape, footprints and relative orderings.

pub mod buffer;
pub mod device;
pub mod error;
pub mod launch;
pub mod primitives;
pub mod stop;

pub use buffer::DeviceBuffer;
pub use device::{with_kernel_label, Device, DeviceConfig, DeviceStats};
pub use error::{DeviceError, Result};
pub use launch::{BlockCtx, LaunchCfg};
pub use stop::StopToken;
