//! Device memory buffers with allocation accounting.

use std::ops::{Deref, DerefMut};

use crate::device::Device;
use crate::error::Result;

/// A typed allocation in simulated device global memory.
///
/// Creating a buffer charges the owning [`Device`]'s allocator (and can
/// fail with `OutOfMemory`); dropping it releases the bytes. Explicit
/// host↔device copy constructors keep transfer byte counters honest, the
/// way a real backend would account `cudaMemcpy` traffic.
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: usize,
    device: Device,
}

impl<T> DeviceBuffer<T> {
    fn charge(device: &Device, len: usize) -> Result<usize> {
        let bytes = len * std::mem::size_of::<T>();
        device.inner.alloc(bytes)?;
        Ok(bytes)
    }

    /// Allocate an uninitialised-by-convention buffer (zero-filled here;
    /// a real device would leave garbage) of `len` elements.
    pub fn zeroed(device: &Device, len: usize) -> Result<Self>
    where
        T: Default + Clone,
    {
        let bytes = Self::charge(device, len)?;
        Ok(DeviceBuffer {
            data: vec![T::default(); len],
            bytes,
            device: device.clone(),
        })
    }

    /// Allocate a buffer filled with `value`.
    pub fn filled(device: &Device, len: usize, value: T) -> Result<Self>
    where
        T: Clone,
    {
        let bytes = Self::charge(device, len)?;
        Ok(DeviceBuffer {
            data: vec![value; len],
            bytes,
            device: device.clone(),
        })
    }

    /// Copy a host slice to the device (counted as an H2D transfer).
    pub fn from_host(device: &Device, host: &[T]) -> Result<Self>
    where
        T: Clone,
    {
        let bytes = Self::charge(device, host.len())?;
        device.inner.count_h2d(bytes as u64);
        Ok(DeviceBuffer {
            data: host.to_vec(),
            bytes,
            device: device.clone(),
        })
    }

    /// Adopt an already-materialised vector as a device allocation. Used by
    /// device-side producers (kernels building outputs); charged but not
    /// counted as a transfer.
    pub fn from_vec(device: &Device, data: Vec<T>) -> Result<Self> {
        let bytes = Self::charge(device, data.len())?;
        Ok(DeviceBuffer {
            data,
            bytes,
            device: device.clone(),
        })
    }

    /// Copy the buffer back to the host (counted as a D2H transfer).
    pub fn to_host(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.device.inner.count_d2h(self.bytes as u64);
        self.data.clone()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Device this buffer lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Immutable view of the device data (kernel input binding).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the device data (kernel output binding).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the buffer, releasing the device bytes but keeping the host
    /// vector (a free "device→host move" for the simulator; counted D2H).
    pub fn into_vec(mut self) -> Vec<T> {
        self.device.inner.count_d2h(self.bytes as u64);
        self.device.inner.free(self.bytes);
        self.bytes = 0; // Drop then releases nothing further.
        std::mem::take(&mut self.data)
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.device.inner.free(self.bytes);
    }
}

impl<T> Deref for DeviceBuffer<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> DerefMut for DeviceBuffer<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("len", &self.data.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_charge_and_release() {
        let dev = Device::with_memory_limit(1 << 20);
        {
            let b = DeviceBuffer::<u32>::zeroed(&dev, 100).unwrap();
            assert_eq!(dev.stats().bytes_in_use, 400);
            assert_eq!(b.len(), 100);
        }
        assert_eq!(dev.stats().bytes_in_use, 0);
        assert_eq!(dev.stats().peak_bytes, 400);
    }

    #[test]
    fn transfers_are_counted() {
        let dev = Device::default();
        let b = DeviceBuffer::from_host(&dev, &[1u32, 2, 3]).unwrap();
        let back = b.to_host();
        assert_eq!(back, vec![1, 2, 3]);
        let s = dev.stats();
        assert_eq!(s.h2d_bytes, 12);
        assert_eq!(s.d2h_bytes, 12);
    }

    #[test]
    fn into_vec_releases_bytes() {
        let dev = Device::default();
        let b = DeviceBuffer::from_host(&dev, &[7u64; 8]).unwrap();
        let v = b.into_vec();
        assert_eq!(v, vec![7u64; 8]);
        assert_eq!(dev.stats().bytes_in_use, 0);
    }

    #[test]
    fn oom_is_reported() {
        let dev = Device::with_memory_limit(16);
        assert!(DeviceBuffer::<u64>::zeroed(&dev, 2).is_ok());
        // Device is full now; drop happened, so retry a too-big one.
        assert!(DeviceBuffer::<u64>::zeroed(&dev, 3).is_err());
    }
}
