//! Bulk-synchronous kernel launches.
//!
//! A launch executes `grid` blocks, each logically running `block_dim`
//! threads. Blocks execute in parallel on the CPU pool; threads within a
//! block execute sequentially inside each barrier-delimited phase (see
//! [`BlockCtx::for_threads`]), which models `__syncthreads` semantics and
//! makes shared-memory updates deterministic.
//!
//! Output discipline: GPU sparse kernels write results at offsets
//! precomputed by a scan (that is the whole point of two-pass symbolic /
//! numeric designs). [`Device::launch`] makes that idiom a safe API: the
//! caller supplies the output buffer together with a partition assigning a
//! disjoint range to each block, and each block receives only its slice.

use rayon::prelude::*;

use crate::device::Device;
use crate::error::{DeviceError, Result};

/// Grid/block shape of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchCfg {
    /// Number of blocks in the grid.
    pub grid: u32,
    /// Threads per block.
    pub block_dim: u32,
}

impl LaunchCfg {
    /// A grid of `grid` blocks with the device-default block size.
    pub fn grid(device: &Device, grid: u32) -> Self {
        LaunchCfg {
            grid,
            block_dim: device.config().default_block_dim,
        }
    }

    /// Enough blocks of `block_dim` threads to cover `n` work items.
    ///
    /// `n == 0` yields a valid one-block launch (a no-op grid) rather
    /// than a zero-block grid that `Device::launch*` would reject as
    /// `InvalidLaunch` — kernels covering empty matrices need no
    /// special-casing at the call site.
    pub fn cover(n: usize, block_dim: u32) -> Self {
        let bd = block_dim.max(1) as usize;
        LaunchCfg {
            grid: n.div_ceil(bd).max(1) as u32,
            block_dim: block_dim.max(1),
        }
    }
}

/// Per-block execution context handed to kernels.
pub struct BlockCtx {
    block_idx: u32,
    grid_dim: u32,
    block_dim: u32,
    shared_limit: usize,
    shared_used: usize,
}

impl BlockCtx {
    /// Index of this block within the grid (`blockIdx.x`).
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// Number of blocks in the grid (`gridDim.x`).
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Threads per block (`blockDim.x`).
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// Allocate a zero-initialised shared-memory array for this block.
    ///
    /// Panics (like a launch failure on a real device) if the block's
    /// shared-memory budget is exceeded — kernels are expected to bin work
    /// so their tables fit, mirroring Nsparse's row binning.
    pub fn shared_array<T: Default + Clone>(&mut self, len: usize) -> Vec<T> {
        let bytes = len * std::mem::size_of::<T>();
        self.shared_used += bytes;
        assert!(
            self.shared_used <= self.shared_limit,
            "shared memory overflow: {} B used of {} B per block",
            self.shared_used,
            self.shared_limit
        );
        vec![T::default(); len]
    }

    /// Release `bytes` of shared memory (when a phase's scratch is dropped
    /// and reused by the next phase).
    pub fn release_shared(&mut self, bytes: usize) {
        self.shared_used = self.shared_used.saturating_sub(bytes);
    }

    /// Run one barrier-delimited phase: the closure is invoked once per
    /// thread id in `0..block_dim`. Returning from `for_threads`
    /// corresponds to `__syncthreads()`.
    pub fn for_threads(&self, mut f: impl FnMut(u32)) {
        for tid in 0..self.block_dim {
            f(tid);
        }
    }

    /// Grid-stride loop over `n` items: invokes `f(item)` for every item
    /// this block is responsible for under a grid-stride schedule.
    pub fn grid_stride(&self, n: usize, mut f: impl FnMut(usize)) {
        let stride = self.grid_dim as usize * self.block_dim as usize;
        let base = self.block_idx as usize * self.block_dim as usize;
        for t in 0..self.block_dim as usize {
            let mut i = base + t;
            while i < n {
                f(i);
                i += stride;
            }
        }
    }
}

impl Device {
    fn make_ctx(&self, block_idx: u32, cfg: LaunchCfg) -> BlockCtx {
        BlockCtx {
            block_idx,
            grid_dim: cfg.grid,
            block_dim: cfg.block_dim,
            shared_limit: self.config().shared_mem_per_block,
            shared_used: 0,
        }
    }

    fn check_cfg(cfg: LaunchCfg) -> Result<()> {
        if cfg.grid == 0 || cfg.block_dim == 0 {
            return Err(DeviceError::InvalidLaunch(format!(
                "grid={} block_dim={}",
                cfg.grid, cfg.block_dim
            )));
        }
        Ok(())
    }

    /// Launch a kernel whose blocks only read device data (outputs, if
    /// any, are produced through reductions or captured atomics).
    pub fn launch_read<F>(&self, cfg: LaunchCfg, kernel: F) -> Result<()>
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        Self::check_cfg(cfg)?;
        self.check_stop()?;
        self.inner.count_launch(cfg.grid as u64);
        self.traced_run(cfg, || {
            (0..cfg.grid).into_par_iter().for_each(|b| {
                let mut ctx = self.make_ctx(b, cfg);
                kernel(&mut ctx);
            });
        });
        Ok(())
    }

    /// Execute `f` on the device's compute pool (dedicated `sm_count`
    /// workers when configured, the global pool otherwise).
    pub(crate) fn run<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match &self.inner.pool {
            Some(pool) => pool.install(f),
            None => f(),
        }
    }

    /// [`Device::run`], recording a `kernel` span when tracing is on.
    /// Every launch entry point funnels through here after its
    /// `count_launch`, so the trace carries exactly one kernel span per
    /// counted launch — the invariant the `spbla trace` export relies on.
    fn traced_run<R: Send>(&self, cfg: LaunchCfg, f: impl FnOnce() -> R + Send) -> R {
        let t = spbla_obs::trace_global();
        if !t.is_enabled() {
            return self.run(f);
        }
        let start = t.now_ns();
        let out = self.run(f);
        t.leaf(
            crate::device::kernel_label(),
            "kernel",
            self.ordinal(),
            start,
            t.now_ns().saturating_sub(start),
            &[
                ("grid", cfg.grid as u64),
                ("block_dim", cfg.block_dim as u64),
            ],
        );
        out
    }

    /// Launch a kernel where block `b` exclusively owns the output range
    /// `partition(b)`. The ranges must be non-overlapping and ascending
    /// (gaps are allowed: unassigned elements are left untouched).
    pub fn launch<T, F>(
        &self,
        cfg: LaunchCfg,
        out: &mut [T],
        partition: impl Fn(u32) -> std::ops::Range<usize>,
        kernel: F,
    ) -> Result<()>
    where
        T: Send,
        F: Fn(&mut BlockCtx, &mut [T]) + Sync,
    {
        Self::check_cfg(cfg)?;
        self.check_stop()?;
        // Materialise and validate the partition.
        let mut ranges = Vec::with_capacity(cfg.grid as usize);
        let mut cursor = 0usize;
        for b in 0..cfg.grid {
            let r = partition(b);
            if r.start < cursor || r.end < r.start || r.end > out.len() {
                return Err(DeviceError::BadPartition(format!(
                    "block {b}: range {}..{} (cursor {cursor}, len {})",
                    r.start,
                    r.end,
                    out.len()
                )));
            }
            cursor = r.end;
            ranges.push(r);
        }
        self.inner.count_launch(cfg.grid as u64);

        // Split `out` into the per-block slices.
        let mut slices: Vec<(u32, &mut [T])> = Vec::with_capacity(ranges.len());
        let mut rest = out;
        let mut offset = 0usize;
        for (b, r) in ranges.iter().enumerate() {
            let (skip, tail) = rest.split_at_mut(r.start - offset);
            let _ = skip;
            let (mine, tail) = tail.split_at_mut(r.end - r.start);
            slices.push((b as u32, mine));
            rest = tail;
            offset = r.end;
        }

        self.traced_run(cfg, || {
            slices.into_par_iter().for_each(|(b, slice)| {
                let mut ctx = self.make_ctx(b, cfg);
                kernel(&mut ctx, slice);
            });
        });
        Ok(())
    }

    /// Launch a kernel that owns one output *chunk of fixed size* per
    /// block, covering `out` (last block may get a short chunk).
    pub fn launch_chunks<T, F>(
        &self,
        block_dim: u32,
        out: &mut [T],
        chunk: usize,
        kernel: F,
    ) -> Result<()>
    where
        T: Send,
        F: Fn(&mut BlockCtx, usize, &mut [T]) + Sync,
    {
        if chunk == 0 {
            return Err(DeviceError::InvalidLaunch("chunk size 0".into()));
        }
        let grid = out.len().div_ceil(chunk).max(1) as u32;
        let cfg = LaunchCfg {
            grid,
            block_dim: block_dim.max(1),
        };
        Self::check_cfg(cfg)?;
        self.check_stop()?;
        self.inner.count_launch(cfg.grid as u64);
        self.traced_run(cfg, || {
            out.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(b, slice)| {
                    let mut ctx = self.make_ctx(b as u32, cfg);
                    kernel(&mut ctx, b * chunk, slice);
                });
        });
        Ok(())
    }

    /// Device-wide elementwise map: `out[i] = f(i)`. One grid-stride
    /// kernel launch.
    pub fn launch_map<T, F>(&self, out: &mut [T], f: F) -> Result<()>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let block = self.config().default_block_dim as usize;
        self.launch_chunks(block as u32, out, block.max(1), |_ctx, base, slice| {
            for (k, dst) in slice.iter_mut().enumerate() {
                *dst = f(base + k);
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_map_fills() {
        let dev = Device::default();
        let mut out = vec![0usize; 1000];
        dev.launch_map(&mut out, |i| i * 2).unwrap();
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
        assert_eq!(dev.stats().launches, 1);
    }

    #[test]
    fn partitioned_launch_gives_disjoint_slices() {
        let dev = Device::default();
        let mut out = vec![0u32; 64];
        let cfg = LaunchCfg {
            grid: 8,
            block_dim: 4,
        };
        dev.launch(
            cfg,
            &mut out,
            |b| (b as usize * 8)..(b as usize * 8 + 8),
            |ctx, slice| {
                for v in slice.iter_mut() {
                    *v = ctx.block_idx();
                }
            },
        )
        .unwrap();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v as usize, i / 8);
        }
    }

    #[test]
    fn overlapping_partition_rejected() {
        let dev = Device::default();
        let mut out = vec![0u32; 10];
        let cfg = LaunchCfg {
            grid: 2,
            block_dim: 1,
        };
        let err = dev
            .launch(cfg, &mut out, |_b| 0..6, |_c, _s| {})
            .unwrap_err();
        assert!(matches!(err, DeviceError::BadPartition(_)));
    }

    #[test]
    fn zero_grid_rejected() {
        let dev = Device::default();
        let err = dev
            .launch_read(
                LaunchCfg {
                    grid: 0,
                    block_dim: 1,
                },
                |_c| {},
            )
            .unwrap_err();
        assert!(matches!(err, DeviceError::InvalidLaunch(_)));
    }

    #[test]
    fn cover_of_zero_items_is_a_valid_noop_launch() {
        let dev = Device::default();
        let cfg = LaunchCfg::cover(0, 128);
        assert_eq!(cfg.grid, 1);
        // The empty cover must launch cleanly and touch nothing.
        let visited = std::sync::atomic::AtomicU32::new(0);
        dev.launch_read(cfg, |ctx| {
            ctx.grid_stride(0, |_| {
                visited.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        })
        .unwrap();
        assert_eq!(visited.load(std::sync::atomic::Ordering::Relaxed), 0);
        // Partitioned launches over an empty output work too.
        let mut out: Vec<u32> = Vec::new();
        dev.launch(cfg, &mut out, |_b| 0..0, |_ctx, _slice| {})
            .unwrap();
    }

    #[test]
    fn grid_stride_covers_everything_once() {
        let dev = Device::default();
        let cfg = LaunchCfg {
            grid: 7,
            block_dim: 3,
        };
        let n = 1000usize;
        let counts: Vec<std::sync::atomic::AtomicU32> = (0..n)
            .map(|_| std::sync::atomic::AtomicU32::new(0))
            .collect();
        dev.launch_read(cfg, |ctx| {
            ctx.grid_stride(n, |i| {
                counts[i].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        })
        .unwrap();
        assert!(counts
            .iter()
            .all(|c| c.load(std::sync::atomic::Ordering::Relaxed) == 1));
    }

    #[test]
    #[should_panic(expected = "shared memory overflow")]
    fn shared_memory_budget_enforced() {
        let dev = Device::default();
        let limit = dev.config().shared_mem_per_block;
        dev.launch_read(
            LaunchCfg {
                grid: 1,
                block_dim: 1,
            },
            |ctx| {
                let _big = ctx.shared_array::<u8>(limit + 1);
            },
        )
        .unwrap();
    }

    #[test]
    fn gaps_in_partition_are_allowed() {
        let dev = Device::default();
        let mut out = vec![9u8; 10];
        let cfg = LaunchCfg {
            grid: 2,
            block_dim: 1,
        };
        dev.launch(
            cfg,
            &mut out,
            |b| if b == 0 { 0..2 } else { 5..7 },
            |_ctx, slice| slice.fill(0),
        )
        .unwrap();
        assert_eq!(out, vec![0, 0, 9, 9, 9, 0, 0, 9, 9, 9]);
    }
}
