//! The simulated device: capacity accounting and launch statistics.
//!
//! Every counter a [`Device`] exposes is *owned by the process-wide
//! [`spbla_obs`] metrics registry* under `spbla_dev_*{dev="N"}` names
//! (`N` = [`Device::ordinal`]): [`DeviceStats`] is a thin snapshot view
//! over those registry cells, so the registry and the stats API can
//! never disagree. Transfers additionally emit `xfer` spans, and kernel
//! launches `kernel` spans, into the global trace when it is enabled.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use spbla_obs::{labeled, metrics_global, trace_global, Counter, Gauge};

use crate::error::{DeviceError, Result};
use crate::stop::StopToken;

/// Process-wide device ordinal source. Ordinals start at 1 so trace
/// track 0 stays reserved for host-side (engine, op) spans.
static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Name attached to kernel spans emitted by launches on this thread
    /// (set by the operation layer around each kernel chain).
    static KERNEL_LABEL: Cell<&'static str> = const { Cell::new("") };
}

/// Run `f` with this thread's kernel launches labeled `name` in the
/// trace. Labels nest; the previous label is restored on return.
pub fn with_kernel_label<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    KERNEL_LABEL.with(|l| {
        let prev = l.replace(name);
        let out = f();
        l.set(prev);
        out
    })
}

/// The label kernel spans on this thread currently carry.
pub(crate) fn kernel_label() -> &'static str {
    let label = KERNEL_LABEL.with(|l| l.get());
    if label.is_empty() {
        "kernel"
    } else {
        label
    }
}

/// Configuration of a simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Global-memory capacity in bytes. Allocations beyond this fail with
    /// [`DeviceError::OutOfMemory`]. Defaults to 8 GiB.
    pub memory_capacity: usize,
    /// Number of streaming multiprocessors; reported in stats and used as
    /// the default grid-saturation hint. Defaults to the CPU parallelism.
    pub sm_count: u32,
    /// Threads per block used by helpers when the caller does not specify
    /// a block size. Defaults to 128 (cuBool's launch default).
    pub default_block_dim: u32,
    /// Shared memory per block in bytes; shared allocations beyond this
    /// fail a debug assertion (kernels are expected to bin their work so
    /// shared tables fit, mirroring Nsparse). Defaults to 48 KiB.
    pub shared_mem_per_block: usize,
    /// When true, the device runs its launches on a dedicated thread
    /// pool of `sm_count` workers instead of the global pool — this
    /// makes `sm_count` the device's actual compute width, enabling
    /// strong-scaling experiments ("how fast would a device with k SMs
    /// run this"). Defaults to false (global pool).
    pub dedicated_pool: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            memory_capacity: 8 << 30,
            sm_count: std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(8),
            default_block_dim: 128,
            shared_mem_per_block: 48 << 10,
            dedicated_pool: false,
        }
    }
}

/// Counters observable after running workloads on a device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes currently allocated in device global memory.
    pub bytes_in_use: usize,
    /// High-water mark of `bytes_in_use`.
    pub peak_bytes: usize,
    /// Number of device allocations performed.
    pub allocations: u64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Total blocks executed across all launches.
    pub blocks_executed: u64,
    /// Bytes copied host→device.
    pub h2d_bytes: u64,
    /// Bytes copied device→host.
    pub d2h_bytes: u64,
    /// Bytes sent to a peer device (device→device traffic). Charged to
    /// the *source* device by the multi-device communicator, so summing
    /// across a grid gives total communication volume exactly once.
    pub d2d_bytes: u64,
    /// Accumulator insertions performed by SpGEMM-style kernels: hash-table
    /// probes that claimed a slot plus expansion entries materialised for
    /// sorting. Masked/delta kernels advertise their savings here — fewer
    /// insertions means fewer candidate products ever cost memory.
    pub accum_insertions: u64,
}

pub(crate) struct DeviceInner {
    pub(crate) config: DeviceConfig,
    pub(crate) pool: Option<rayon::ThreadPool>,
    /// Fast-path flag: launches only take the `stop` lock when armed.
    stop_armed: AtomicBool,
    stop: parking_lot::Mutex<Option<crate::stop::StopToken>>,
    /// Process-wide ordinal: the `dev` label of this device's metrics
    /// and the trace track of its kernel/transfer spans.
    ordinal: u64,
    // Registry-owned cells (`spbla_dev_*{dev="ordinal"}`): these handles
    // are the *same* cells the exporters read, so `DeviceStats` and a
    // registry dump can never disagree.
    bytes_in_use: Gauge,
    peak_bytes: Gauge,
    allocations: Counter,
    launches: Counter,
    blocks_executed: Counter,
    h2d_bytes: Counter,
    d2h_bytes: Counter,
    d2d_bytes: Counter,
    accum_insertions: Counter,
}

impl DeviceInner {
    pub(crate) fn alloc(&self, bytes: usize) -> Result<()> {
        // The capacity check CASes directly on the registry gauge — the
        // registry *is* the allocator's book, not a mirror of it.
        let mut cur = self.bytes_in_use.get();
        loop {
            let next = cur.saturating_add(bytes as u64);
            if next > self.config.memory_capacity as u64 {
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    in_use: cur as usize,
                    capacity: self.config.memory_capacity,
                });
            }
            match self.bytes_in_use.compare_exchange_weak(cur, next) {
                Ok(_) => {
                    self.allocations.inc(1);
                    self.peak_bytes.fetch_max(next);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    pub(crate) fn free(&self, bytes: usize) {
        self.bytes_in_use.sub(bytes as u64);
    }

    pub(crate) fn count_launch(&self, blocks: u64) {
        self.launches.inc(1);
        self.blocks_executed.inc(blocks);
    }

    pub(crate) fn count_h2d(&self, bytes: u64) {
        self.h2d_bytes.inc(bytes);
        self.xfer_span("h2d", bytes);
    }

    pub(crate) fn count_d2h(&self, bytes: u64) {
        self.d2h_bytes.inc(bytes);
        self.xfer_span("d2h", bytes);
    }

    fn xfer_span(&self, name: &'static str, bytes: u64) {
        let t = trace_global();
        if t.is_enabled() {
            t.leaf(
                name,
                "xfer",
                self.ordinal,
                t.now_ns(),
                0,
                &[("bytes", bytes)],
            );
        }
    }
}

impl Device {
    /// Count one primitive launch (`blocks` logical blocks) around `f`,
    /// recording a `kernel` span named after the primitive when tracing
    /// is on. Primitives (scan, sort, reduce, histogram, compaction)
    /// bypass [`Device::launch`], so they must go through here to keep
    /// the `spbla trace` invariant: exactly one kernel span per counted
    /// launch.
    pub(crate) fn primitive_launch<R>(
        &self,
        name: &'static str,
        blocks: u64,
        f: impl FnOnce() -> R,
    ) -> R {
        self.inner.count_launch(blocks);
        let t = trace_global();
        if !t.is_enabled() {
            return f();
        }
        let start = t.now_ns();
        let out = f();
        t.leaf(
            name,
            "kernel",
            self.ordinal(),
            start,
            t.now_ns().saturating_sub(start),
            &[("blocks", blocks)],
        );
        out
    }

    /// Charge `bytes` of peer (device→device) traffic to this device.
    /// Called by a multi-device communicator on the *sending* side of
    /// every peer copy, broadcast and all-gather round.
    pub fn count_d2d(&self, bytes: u64) {
        if bytes > 0 {
            self.inner.d2d_bytes.inc(bytes);
            self.inner.xfer_span("d2d", bytes);
        }
    }
}

impl Device {
    /// Charge `n` accumulator insertions to this device. Called by SpGEMM
    /// kernels once per claimed hash slot / emitted expansion entry, so
    /// schedules can be compared by how many candidate products they ever
    /// materialise.
    pub fn count_accum_insertions(&self, n: u64) {
        self.inner.accum_insertions.inc(n);
    }
}

/// A handle to a simulated GPGPU device. Cheap to clone; all clones share
/// the same memory accounting and statistics.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let pool = if config.dedicated_pool {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(config.sm_count.max(1) as usize)
                    .build()
                    .expect("dedicated device pool builds"),
            )
        } else {
            None
        };
        let ordinal = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
        let dev = ordinal.to_string();
        let reg = metrics_global();
        let metric = |family: &str| labeled(family, &[("dev", &dev)]);
        Device {
            inner: Arc::new(DeviceInner {
                config,
                pool,
                stop_armed: AtomicBool::new(false),
                stop: parking_lot::Mutex::new(None),
                ordinal,
                bytes_in_use: reg.gauge(&metric("spbla_dev_bytes_in_use")),
                peak_bytes: reg.gauge(&metric("spbla_dev_peak_bytes")),
                allocations: reg.counter(&metric("spbla_dev_allocations_total")),
                launches: reg.counter(&metric("spbla_dev_launches_total")),
                blocks_executed: reg.counter(&metric("spbla_dev_blocks_executed_total")),
                h2d_bytes: reg.counter(&metric("spbla_dev_h2d_bytes_total")),
                d2h_bytes: reg.counter(&metric("spbla_dev_d2h_bytes_total")),
                d2d_bytes: reg.counter(&metric("spbla_dev_d2d_bytes_total")),
                accum_insertions: reg.counter(&metric("spbla_dev_accum_insertions_total")),
            }),
        }
    }

    /// Create a device whose global memory is capped at `bytes` — used by
    /// OOM failure-injection tests.
    pub fn with_memory_limit(bytes: usize) -> Self {
        Device::new(DeviceConfig {
            memory_capacity: bytes,
            ..DeviceConfig::default()
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// Process-wide device ordinal: the `dev` label on this device's
    /// `spbla_dev_*` metrics and the trace track (`tid`) of its spans.
    /// Ordinals start at 1; track 0 is reserved for host-side spans.
    pub fn ordinal(&self) -> u64 {
        self.inner.ordinal
    }

    /// Snapshot of the device counters — a thin view over the same
    /// registry cells `spbla_dev_*{dev="ordinal"}` exports read.
    pub fn stats(&self) -> DeviceStats {
        let i = &self.inner;
        DeviceStats {
            bytes_in_use: i.bytes_in_use.get() as usize,
            peak_bytes: i.peak_bytes.get() as usize,
            allocations: i.allocations.get(),
            launches: i.launches.get(),
            blocks_executed: i.blocks_executed.get(),
            h2d_bytes: i.h2d_bytes.get(),
            d2h_bytes: i.d2h_bytes.get(),
            d2d_bytes: i.d2d_bytes.get(),
            accum_insertions: i.accum_insertions.get(),
        }
    }

    /// Reset the peak-bytes watermark to the current usage, so a single
    /// experiment's footprint can be measured on a long-lived device.
    pub fn reset_peak(&self) {
        self.inner.peak_bytes.set(self.inner.bytes_in_use.get());
    }

    /// Arm cooperative cancellation: until [`Device::clear_stop_token`],
    /// every launch entry point checks `token` first and refuses with
    /// the token's typed error once it is cancelled or past deadline.
    /// Installing a new token replaces the previous one.
    pub fn install_stop_token(&self, token: StopToken) {
        *self.inner.stop.lock() = Some(token);
        self.inner.stop_armed.store(true, Ordering::Release);
    }

    /// Disarm cancellation (e.g. when a request finishes and the device
    /// returns to the pool).
    pub fn clear_stop_token(&self) {
        self.inner.stop_armed.store(false, Ordering::Release);
        *self.inner.stop.lock() = None;
    }

    /// The cheap between-launches check: `None` when no token is armed
    /// (one relaxed atomic load) or the armed token is still live.
    pub fn should_stop(&self) -> Option<DeviceError> {
        if !self.inner.stop_armed.load(Ordering::Acquire) {
            return None;
        }
        self.inner
            .stop
            .lock()
            .as_ref()
            .and_then(StopToken::should_stop)
    }

    /// [`Device::should_stop`] as a `Result`, for `?`-chaining between
    /// kernel launches inside fixpoint loops.
    pub fn check_stop(&self) -> Result<()> {
        match self.should_stop() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_accounting_tracks_peak() {
        let dev = Device::with_memory_limit(1000);
        dev.inner.alloc(400).unwrap();
        dev.inner.alloc(500).unwrap();
        dev.inner.free(500);
        let s = dev.stats();
        assert_eq!(s.bytes_in_use, 400);
        assert_eq!(s.peak_bytes, 900);
        assert_eq!(s.allocations, 2);
    }

    #[test]
    fn alloc_over_capacity_fails() {
        let dev = Device::with_memory_limit(100);
        dev.inner.alloc(64).unwrap();
        let err = dev.inner.alloc(64).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        // The failed allocation must not be charged.
        assert_eq!(dev.stats().bytes_in_use, 64);
    }

    #[test]
    fn dedicated_pool_width_matches_sm_count() {
        let dev = Device::new(DeviceConfig {
            sm_count: 3,
            dedicated_pool: true,
            ..DeviceConfig::default()
        });
        let width = dev
            .inner
            .pool
            .as_ref()
            .expect("pool built")
            .current_num_threads();
        assert_eq!(width, 3);
        // Default devices share the global pool.
        assert!(Device::default().inner.pool.is_none());
    }

    #[test]
    fn d2d_traffic_accumulates_on_sender() {
        let dev = Device::default();
        dev.count_d2d(128);
        dev.count_d2d(0); // free
        dev.count_d2d(72);
        assert_eq!(dev.stats().d2d_bytes, 200);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let dev = Device::with_memory_limit(1000);
        dev.inner.alloc(800).unwrap();
        dev.inner.free(800);
        dev.reset_peak();
        assert_eq!(dev.stats().peak_bytes, 0);
    }

    #[test]
    fn stats_view_matches_registry_cells() {
        let dev = Device::default();
        dev.inner.alloc(256).unwrap();
        dev.inner.count_launch(4);
        dev.inner.count_h2d(100);
        dev.inner.count_d2h(40);
        dev.count_d2d(16);
        dev.count_accum_insertions(9);
        let s = dev.stats();
        let reg = metrics_global();
        let dev_label = dev.ordinal().to_string();
        let get = |family: &str| reg.counter(&labeled(family, &[("dev", &dev_label)])).get();
        assert_eq!(s.launches, get("spbla_dev_launches_total"));
        assert_eq!(s.blocks_executed, get("spbla_dev_blocks_executed_total"));
        assert_eq!(s.h2d_bytes, get("spbla_dev_h2d_bytes_total"));
        assert_eq!(s.d2h_bytes, get("spbla_dev_d2h_bytes_total"));
        assert_eq!(s.d2d_bytes, get("spbla_dev_d2d_bytes_total"));
        assert_eq!(s.accum_insertions, get("spbla_dev_accum_insertions_total"));
        assert_eq!(s.allocations, get("spbla_dev_allocations_total"));
        assert_eq!(
            s.bytes_in_use as u64,
            reg.gauge(&labeled("spbla_dev_bytes_in_use", &[("dev", &dev_label)]))
                .get()
        );
    }

    #[test]
    fn kernel_labels_nest_and_restore() {
        assert_eq!(kernel_label(), "kernel");
        with_kernel_label("gemm", || {
            assert_eq!(kernel_label(), "gemm");
            with_kernel_label("scan", || assert_eq!(kernel_label(), "scan"));
            assert_eq!(kernel_label(), "gemm");
        });
        assert_eq!(kernel_label(), "kernel");
    }
}
