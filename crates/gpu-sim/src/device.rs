//! The simulated device: capacity accounting and launch statistics.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{DeviceError, Result};
use crate::stop::StopToken;

/// Configuration of a simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Global-memory capacity in bytes. Allocations beyond this fail with
    /// [`DeviceError::OutOfMemory`]. Defaults to 8 GiB.
    pub memory_capacity: usize,
    /// Number of streaming multiprocessors; reported in stats and used as
    /// the default grid-saturation hint. Defaults to the CPU parallelism.
    pub sm_count: u32,
    /// Threads per block used by helpers when the caller does not specify
    /// a block size. Defaults to 128 (cuBool's launch default).
    pub default_block_dim: u32,
    /// Shared memory per block in bytes; shared allocations beyond this
    /// fail a debug assertion (kernels are expected to bin their work so
    /// shared tables fit, mirroring Nsparse). Defaults to 48 KiB.
    pub shared_mem_per_block: usize,
    /// When true, the device runs its launches on a dedicated thread
    /// pool of `sm_count` workers instead of the global pool — this
    /// makes `sm_count` the device's actual compute width, enabling
    /// strong-scaling experiments ("how fast would a device with k SMs
    /// run this"). Defaults to false (global pool).
    pub dedicated_pool: bool,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            memory_capacity: 8 << 30,
            sm_count: std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(8),
            default_block_dim: 128,
            shared_mem_per_block: 48 << 10,
            dedicated_pool: false,
        }
    }
}

/// Counters observable after running workloads on a device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes currently allocated in device global memory.
    pub bytes_in_use: usize,
    /// High-water mark of `bytes_in_use`.
    pub peak_bytes: usize,
    /// Number of device allocations performed.
    pub allocations: u64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Total blocks executed across all launches.
    pub blocks_executed: u64,
    /// Bytes copied host→device.
    pub h2d_bytes: u64,
    /// Bytes copied device→host.
    pub d2h_bytes: u64,
    /// Bytes sent to a peer device (device→device traffic). Charged to
    /// the *source* device by the multi-device communicator, so summing
    /// across a grid gives total communication volume exactly once.
    pub d2d_bytes: u64,
    /// Accumulator insertions performed by SpGEMM-style kernels: hash-table
    /// probes that claimed a slot plus expansion entries materialised for
    /// sorting. Masked/delta kernels advertise their savings here — fewer
    /// insertions means fewer candidate products ever cost memory.
    pub accum_insertions: u64,
}

pub(crate) struct DeviceInner {
    pub(crate) config: DeviceConfig,
    pub(crate) pool: Option<rayon::ThreadPool>,
    /// Fast-path flag: launches only take the `stop` lock when armed.
    stop_armed: AtomicBool,
    stop: parking_lot::Mutex<Option<crate::stop::StopToken>>,
    bytes_in_use: AtomicUsize,
    peak_bytes: AtomicUsize,
    allocations: AtomicU64,
    launches: AtomicU64,
    blocks_executed: AtomicU64,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    d2d_bytes: AtomicU64,
    accum_insertions: AtomicU64,
}

impl DeviceInner {
    pub(crate) fn alloc(&self, bytes: usize) -> Result<()> {
        let mut cur = self.bytes_in_use.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > self.config.memory_capacity {
                return Err(DeviceError::OutOfMemory {
                    requested: bytes,
                    in_use: cur,
                    capacity: self.config.memory_capacity,
                });
            }
            match self.bytes_in_use.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.allocations.fetch_add(1, Ordering::Relaxed);
                    self.peak_bytes.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    pub(crate) fn free(&self, bytes: usize) {
        self.bytes_in_use.fetch_sub(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_launch(&self, blocks: u64) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.blocks_executed.fetch_add(blocks, Ordering::Relaxed);
    }

    pub(crate) fn count_h2d(&self, bytes: u64) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_d2h(&self, bytes: u64) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

impl Device {
    /// Charge `bytes` of peer (device→device) traffic to this device.
    /// Called by a multi-device communicator on the *sending* side of
    /// every peer copy, broadcast and all-gather round.
    pub fn count_d2d(&self, bytes: u64) {
        if bytes > 0 {
            self.inner.d2d_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }
}

impl Device {
    /// Charge `n` accumulator insertions to this device. Called by SpGEMM
    /// kernels once per claimed hash slot / emitted expansion entry, so
    /// schedules can be compared by how many candidate products they ever
    /// materialise.
    pub fn count_accum_insertions(&self, n: u64) {
        if n > 0 {
            self.inner.accum_insertions.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// A handle to a simulated GPGPU device. Cheap to clone; all clones share
/// the same memory accounting and statistics.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

impl Device {
    /// Create a device with the given configuration.
    pub fn new(config: DeviceConfig) -> Self {
        let pool = if config.dedicated_pool {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(config.sm_count.max(1) as usize)
                    .build()
                    .expect("dedicated device pool builds"),
            )
        } else {
            None
        };
        Device {
            inner: Arc::new(DeviceInner {
                config,
                pool,
                stop_armed: AtomicBool::new(false),
                stop: parking_lot::Mutex::new(None),
                bytes_in_use: AtomicUsize::new(0),
                peak_bytes: AtomicUsize::new(0),
                allocations: AtomicU64::new(0),
                launches: AtomicU64::new(0),
                blocks_executed: AtomicU64::new(0),
                h2d_bytes: AtomicU64::new(0),
                d2h_bytes: AtomicU64::new(0),
                d2d_bytes: AtomicU64::new(0),
                accum_insertions: AtomicU64::new(0),
            }),
        }
    }

    /// Create a device whose global memory is capped at `bytes` — used by
    /// OOM failure-injection tests.
    pub fn with_memory_limit(bytes: usize) -> Self {
        Device::new(DeviceConfig {
            memory_capacity: bytes,
            ..DeviceConfig::default()
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.inner.config
    }

    /// Snapshot of the device counters.
    pub fn stats(&self) -> DeviceStats {
        let i = &self.inner;
        DeviceStats {
            bytes_in_use: i.bytes_in_use.load(Ordering::Relaxed),
            peak_bytes: i.peak_bytes.load(Ordering::Relaxed),
            allocations: i.allocations.load(Ordering::Relaxed),
            launches: i.launches.load(Ordering::Relaxed),
            blocks_executed: i.blocks_executed.load(Ordering::Relaxed),
            h2d_bytes: i.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: i.d2h_bytes.load(Ordering::Relaxed),
            d2d_bytes: i.d2d_bytes.load(Ordering::Relaxed),
            accum_insertions: i.accum_insertions.load(Ordering::Relaxed),
        }
    }

    /// Reset the peak-bytes watermark to the current usage, so a single
    /// experiment's footprint can be measured on a long-lived device.
    pub fn reset_peak(&self) {
        let cur = self.inner.bytes_in_use.load(Ordering::Relaxed);
        self.inner.peak_bytes.store(cur, Ordering::Relaxed);
    }

    /// Arm cooperative cancellation: until [`Device::clear_stop_token`],
    /// every launch entry point checks `token` first and refuses with
    /// the token's typed error once it is cancelled or past deadline.
    /// Installing a new token replaces the previous one.
    pub fn install_stop_token(&self, token: StopToken) {
        *self.inner.stop.lock() = Some(token);
        self.inner.stop_armed.store(true, Ordering::Release);
    }

    /// Disarm cancellation (e.g. when a request finishes and the device
    /// returns to the pool).
    pub fn clear_stop_token(&self) {
        self.inner.stop_armed.store(false, Ordering::Release);
        *self.inner.stop.lock() = None;
    }

    /// The cheap between-launches check: `None` when no token is armed
    /// (one relaxed atomic load) or the armed token is still live.
    pub fn should_stop(&self) -> Option<DeviceError> {
        if !self.inner.stop_armed.load(Ordering::Acquire) {
            return None;
        }
        self.inner
            .stop
            .lock()
            .as_ref()
            .and_then(StopToken::should_stop)
    }

    /// [`Device::should_stop`] as a `Result`, for `?`-chaining between
    /// kernel launches inside fixpoint loops.
    pub fn check_stop(&self) -> Result<()> {
        match self.should_stop() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_accounting_tracks_peak() {
        let dev = Device::with_memory_limit(1000);
        dev.inner.alloc(400).unwrap();
        dev.inner.alloc(500).unwrap();
        dev.inner.free(500);
        let s = dev.stats();
        assert_eq!(s.bytes_in_use, 400);
        assert_eq!(s.peak_bytes, 900);
        assert_eq!(s.allocations, 2);
    }

    #[test]
    fn alloc_over_capacity_fails() {
        let dev = Device::with_memory_limit(100);
        dev.inner.alloc(64).unwrap();
        let err = dev.inner.alloc(64).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        // The failed allocation must not be charged.
        assert_eq!(dev.stats().bytes_in_use, 64);
    }

    #[test]
    fn dedicated_pool_width_matches_sm_count() {
        let dev = Device::new(DeviceConfig {
            sm_count: 3,
            dedicated_pool: true,
            ..DeviceConfig::default()
        });
        let width = dev
            .inner
            .pool
            .as_ref()
            .expect("pool built")
            .current_num_threads();
        assert_eq!(width, 3);
        // Default devices share the global pool.
        assert!(Device::default().inner.pool.is_none());
    }

    #[test]
    fn d2d_traffic_accumulates_on_sender() {
        let dev = Device::default();
        dev.count_d2d(128);
        dev.count_d2d(0); // free
        dev.count_d2d(72);
        assert_eq!(dev.stats().d2d_bytes, 200);
    }

    #[test]
    fn reset_peak_rebases_to_current() {
        let dev = Device::with_memory_limit(1000);
        dev.inner.alloc(800).unwrap();
        dev.inner.free(800);
        dev.reset_peak();
        assert_eq!(dev.stats().peak_bytes, 0);
    }
}
