//! GPU Merge Path (Green, McColl, Bader): balanced partitioning of a
//! two-way merge via diagonal binary search. This is the load-balancing
//! core of both matrix-addition kernels in the paper.

/// A split point on the merge path: the merge of `a[..a_idx]` and
/// `b[..b_idx]` is exactly the first `a_idx + b_idx` outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePoint {
    /// Elements consumed from the first input.
    pub a_idx: usize,
    /// Elements consumed from the second input.
    pub b_idx: usize,
}

/// Find the merge-path crossing of diagonal `diag` (`0 ..= a.len()+b.len()`)
/// for the stable merge of sorted `a` and `b` where ties consume `a` first.
///
/// Out-of-range diagonals are clamped to the final point (debug builds
/// still assert) so a miscomputed caller diagonal can never turn into
/// out-of-bounds segment indices downstream.
pub fn merge_path_partition<T: Ord>(a: &[T], b: &[T], diag: usize) -> MergePoint {
    debug_assert!(diag <= a.len() + b.len(), "diagonal out of range");
    let diag = diag.min(a.len() + b.len());
    // Binary search over i = elements taken from `a`, j = diag - i.
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = diag - i;
        // The path crosses below (i, j) iff a[i] is merged before b[j-1].
        // With a-first tie consumption that is a[i] <= b[j-1]: a strict
        // `<` here silently flips ties to b-first, contradicting the
        // contract above (observable as (0, 1) instead of (1, 0) for
        // a = b = [x], diag = 1 — invisible to value-only checks).
        if i < a.len() && j > 0 && a[i] <= b[j - 1] {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    MergePoint {
        a_idx: lo,
        b_idx: diag - lo,
    }
}

/// Split the merge of `a` and `b` into `parts` balanced segments; returns
/// `parts + 1` points from `(0,0)` to `(a.len(), b.len())`.
pub fn merge_path_partitions<T: Ord>(a: &[T], b: &[T], parts: usize) -> Vec<MergePoint> {
    let total = a.len() + b.len();
    let parts = parts.max(1);
    (0..=parts)
        // Widen before multiplying: `p * total` overflows usize for
        // near-capacity merges long before the merge itself would.
        .map(|p| merge_path_partition(a, b, (p as u128 * total as u128 / parts as u128) as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_partition(a: &[u32], b: &[u32], parts: usize) {
        let points = merge_path_partitions(a, b, parts);
        assert_eq!(points[0], MergePoint { a_idx: 0, b_idx: 0 });
        assert_eq!(
            *points.last().unwrap(),
            MergePoint {
                a_idx: a.len(),
                b_idx: b.len()
            }
        );
        // Merging each segment independently must reproduce the full merge.
        let mut merged = Vec::new();
        for w in points.windows(2) {
            let (s, e) = (w[0], w[1]);
            let mut i = s.a_idx;
            let mut j = s.b_idx;
            while i < e.a_idx || j < e.b_idx {
                if j >= e.b_idx || (i < e.a_idx && a[i] <= b[j]) {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
        }
        let mut expect = [a, b].concat();
        expect.sort_unstable();
        assert_eq!(merged, expect);
    }

    #[test]
    fn partitions_reconstruct_merge() {
        let a: Vec<u32> = (0..100).map(|i| i * 3).collect();
        let b: Vec<u32> = (0..150).map(|i| i * 2 + 1).collect();
        for parts in [1, 2, 3, 7, 16] {
            check_partition(&a, &b, parts);
        }
    }

    #[test]
    fn skewed_and_empty_inputs() {
        check_partition(&[], &[1, 2, 3], 4);
        check_partition(&[1, 2, 3], &[], 4);
        check_partition(&[], &[], 2);
        let a = vec![5u32; 100]; // heavy duplicates
        let b = vec![5u32; 37];
        check_partition(&a, &b, 8);
    }

    #[test]
    fn ties_consume_a_first() {
        // Regression: a strict `<` in the crossing condition returns
        // (0, 1) here — b-first ties — which value-only merge checks
        // cannot distinguish but index consumers can.
        assert_eq!(
            merge_path_partition(&[5u32], &[5u32], 1),
            MergePoint { a_idx: 1, b_idx: 0 }
        );
        // All-duplicates: every diagonal drains `a` before touching `b`.
        let a = [7u32; 4];
        let b = [7u32; 3];
        for diag in 0..=7usize {
            let p = merge_path_partition(&a, &b, diag);
            assert_eq!(p.a_idx, diag.min(a.len()));
            assert_eq!(p.b_idx, diag.saturating_sub(a.len()));
        }
    }

    #[test]
    fn empty_slices_at_every_diagonal() {
        let v = [1u32, 2, 3];
        for diag in 0..=3usize {
            assert_eq!(
                merge_path_partition(&[], &v, diag),
                MergePoint {
                    a_idx: 0,
                    b_idx: diag
                }
            );
            assert_eq!(
                merge_path_partition(&v, &[], diag),
                MergePoint {
                    a_idx: diag,
                    b_idx: 0
                }
            );
        }
        assert_eq!(
            merge_path_partition::<u32>(&[], &[], 0),
            MergePoint { a_idx: 0, b_idx: 0 }
        );
    }

    #[test]
    fn diagonal_zero_and_full() {
        let a = [1u32, 4, 6];
        let b = [2u32, 3, 5];
        assert_eq!(
            merge_path_partition(&a, &b, 0),
            MergePoint { a_idx: 0, b_idx: 0 }
        );
        let end = merge_path_partition(&a, &b, 6);
        assert_eq!(end, MergePoint { a_idx: 3, b_idx: 3 });
    }
}
