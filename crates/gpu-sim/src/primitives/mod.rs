//! Thrust-style device-wide primitives.
//!
//! These are the building blocks cuBool gets from NVIDIA Thrust (scan,
//! reduce, sort, compaction) and clBool hand-rolls in OpenCL. Each
//! primitive is itself expressed as one or more kernel launches on the
//! simulated device so that launch and memory counters stay meaningful.

pub mod compact;
pub mod histogram;
pub mod merge;
pub mod reduce;
pub mod scan;
pub mod scatter;
pub mod sort;

pub use compact::{compact_flagged, compact_indices};
pub use histogram::histogram;
pub use merge::{merge_path_partition, MergePoint};
pub use reduce::{reduce_max, reduce_sum};
pub use scan::{exclusive_scan, inclusive_scan};
pub use scatter::ScatterBuf;
pub use sort::{sort_u64, sort_u64_by_key_u32};
