//! A shared scatter buffer for kernels whose blocks write disjoint but
//! interleaved positions (radix-sort scatter, ESC expansion).
//!
//! Real GPU kernels scatter through global memory at offsets derived from
//! a prior scan; distinct threads never collide. `ScatterBuf` encodes that
//! contract: writes go through a shared `&self`, and in debug builds every
//! slot is checked for double-writes so a broken offset computation fails
//! loudly instead of corrupting output.

use std::cell::UnsafeCell;

/// A write-only shared view over a `Vec<T>` allowing disjoint scattered
/// writes from parallel blocks.
pub struct ScatterBuf<T> {
    data: Vec<UnsafeCell<T>>,
    #[cfg(debug_assertions)]
    written: Vec<std::sync::atomic::AtomicU8>,
}

// SAFETY: all mutation goes through `write`, whose contract requires
// distinct indices across concurrent callers (checked in debug builds).
unsafe impl<T: Send> Sync for ScatterBuf<T> {}
unsafe impl<T: Send> Send for ScatterBuf<T> {}

impl<T: Default + Clone> ScatterBuf<T> {
    /// Create a buffer of `len` default-initialised slots.
    pub fn new(len: usize) -> Self {
        ScatterBuf {
            data: (0..len).map(|_| UnsafeCell::new(T::default())).collect(),
            #[cfg(debug_assertions)]
            written: (0..len)
                .map(|_| std::sync::atomic::AtomicU8::new(0))
                .collect(),
        }
    }
}

impl<T> ScatterBuf<T> {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has no slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` into slot `idx`.
    ///
    /// # Contract
    /// Each index must be written by at most one thread over the lifetime
    /// of the buffer (enforced in debug builds). Out-of-bounds panics.
    #[inline]
    pub fn write(&self, idx: usize, value: T) {
        #[cfg(debug_assertions)]
        {
            let prev = self.written[idx].swap(1, std::sync::atomic::Ordering::Relaxed);
            assert_eq!(prev, 0, "ScatterBuf double write at index {idx}");
        }
        let cell = &self.data[idx];
        // SAFETY: contract guarantees exclusive access to this slot.
        unsafe { *cell.get() = value };
    }

    /// Consume the buffer, returning the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_scatter() {
        let buf = ScatterBuf::<u32>::new(10_000);
        (0..10_000u32).into_par_iter().for_each(|i| {
            // Scatter with a permutation to exercise interleaving.
            let pos = ((i as usize) * 7919) % 10_000;
            buf.write(pos, i);
        });
        let v = buf.into_vec();
        let mut seen = vec![false; 10_000];
        for (pos, &val) in v.iter().enumerate() {
            assert_eq!(((val as usize) * 7919) % 10_000, pos);
            assert!(!seen[val as usize]);
            seen[val as usize] = true;
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double write")]
    fn double_write_detected_in_debug() {
        let buf = ScatterBuf::<u32>::new(4);
        buf.write(1, 10);
        buf.write(1, 11);
    }
}
