//! Device-wide reductions.

use rayon::prelude::*;

use crate::device::Device;

/// Sum of all elements (tree reduction; one logical launch).
pub fn reduce_sum(device: &Device, data: &[usize]) -> usize {
    device.primitive_launch("reduce_sum", 1, || data.par_iter().sum())
}

/// Maximum element, or `None` for an empty input.
pub fn reduce_max(device: &Device, data: &[usize]) -> Option<usize> {
    device.primitive_launch("reduce_max", 1, || data.par_iter().copied().max())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_max() {
        let dev = Device::default();
        let v: Vec<usize> = (1..=1000).collect();
        assert_eq!(reduce_sum(&dev, &v), 500_500);
        assert_eq!(reduce_max(&dev, &v), Some(1000));
        assert_eq!(reduce_max(&dev, &[]), None);
    }
}
