//! Stream compaction (Thrust `copy_if`): keep flagged elements, preserving
//! order, via flag scan + scatter.

use rayon::prelude::*;

use crate::device::Device;
use crate::error::Result;
use crate::primitives::scan::exclusive_scan;
use crate::primitives::scatter::ScatterBuf;

/// Return the elements of `data` whose flag is nonzero, preserving order.
pub fn compact_flagged<T: Copy + Default + Send + Sync>(
    device: &Device,
    data: &[T],
    flags: &[u8],
) -> Result<Vec<T>> {
    assert_eq!(data.len(), flags.len(), "data/flags length mismatch");
    let mut offsets: Vec<usize> = flags.iter().map(|&f| (f != 0) as usize).collect();
    let kept = exclusive_scan(device, &mut offsets)?;
    let out = ScatterBuf::<T>::new(kept);
    device.primitive_launch("compact_scatter", 1, || {
        data.par_iter()
            .zip(flags.par_iter())
            .zip(offsets.par_iter())
            .for_each(|((&v, &f), &o)| {
                if f != 0 {
                    out.write(o, v);
                }
            });
    });
    Ok(out.into_vec())
}

/// Return the *indices* at which `flags` is nonzero, ascending.
pub fn compact_indices(device: &Device, flags: &[u8]) -> Result<Vec<usize>> {
    let idx: Vec<usize> = (0..flags.len()).collect();
    compact_flagged(device, &idx, flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_flagged_in_order() {
        let dev = Device::default();
        let data: Vec<u32> = (0..10_000).collect();
        let flags: Vec<u8> = data.iter().map(|&v| (v % 3 == 0) as u8).collect();
        let out = compact_flagged(&dev, &data, &flags).unwrap();
        let expect: Vec<u32> = data.iter().copied().filter(|v| v % 3 == 0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn indices_variant() {
        let dev = Device::default();
        let flags = vec![0u8, 1, 0, 1, 1, 0];
        assert_eq!(compact_indices(&dev, &flags).unwrap(), vec![1, 3, 4]);
    }

    #[test]
    fn all_dropped_and_all_kept() {
        let dev = Device::default();
        let data = vec![1u32, 2, 3];
        assert!(compact_flagged(&dev, &data, &[0, 0, 0]).unwrap().is_empty());
        assert_eq!(compact_flagged(&dev, &data, &[1, 1, 1]).unwrap(), data);
    }
}
