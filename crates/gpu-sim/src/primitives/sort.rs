//! Parallel LSD radix sort on 64-bit keys.
//!
//! clBool's COO pipeline (and the ESC SpGEMM reconstruction) sort packed
//! `(row << 32) | col` keys. The sort is a classic GPU LSD radix: for each
//! 8-bit digit, per-block histograms, a digit-major/block-minor exclusive
//! scan, and a scatter at scanned offsets (disjoint by construction, so it
//! goes through [`ScatterBuf`]). Passes whose digit is constant across all
//! keys are skipped, which makes sorting of low-range keys cheap.

use rayon::prelude::*;

use crate::device::Device;
use crate::primitives::scatter::ScatterBuf;

const RADIX_BITS: usize = 8;
const RADIX: usize = 1 << RADIX_BITS;
const PASSES: usize = 64 / RADIX_BITS;

fn digit(key: u64, pass: usize) -> usize {
    ((key >> (pass * RADIX_BITS)) & (RADIX as u64 - 1)) as usize
}

/// Sort `keys` ascending, in place.
pub fn sort_u64(device: &Device, keys: &mut Vec<u64>) {
    let mut payload: Vec<u32> = Vec::new();
    sort_impl(device, keys, &mut payload);
}

/// Sort `keys` ascending, applying the same permutation to `vals`.
///
/// # Panics
/// If `keys.len() != vals.len()`.
pub fn sort_u64_by_key_u32(device: &Device, keys: &mut Vec<u64>, vals: &mut Vec<u32>) {
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    sort_impl(device, keys, vals);
}

fn sort_impl(device: &Device, keys: &mut Vec<u64>, vals: &mut Vec<u32>) {
    let n = keys.len();
    if n <= 1 {
        return;
    }
    // Small inputs: a serial comparison sort is both faster and simpler.
    if n < 1 << 13 {
        device.primitive_launch("sort_small", 1, || {
            if vals.is_empty() {
                keys.sort_unstable();
            } else {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                // Stable, matching the LSD radix passes below.
                perm.sort_by_key(|&i| keys[i as usize]);
                let old_keys = std::mem::take(keys);
                let old_vals = std::mem::take(vals);
                *keys = perm.iter().map(|&i| old_keys[i as usize]).collect();
                *vals = perm.iter().map(|&i| old_vals[i as usize]).collect();
            }
        });
        return;
    }

    let or_all: u64 = keys
        .par_iter()
        .fold(|| 0u64, |a, &k| a | k)
        .reduce(|| 0, |a, b| a | b);
    let chunk = n.div_ceil(rayon::current_num_threads().max(1) * 4).max(1);
    let nchunks = n.div_ceil(chunk);

    for pass in 0..PASSES {
        // Skip passes where every key shares the digit (common: packed
        // row/col indices rarely use the full 64 bits).
        if pass > 0 && (or_all >> (pass * RADIX_BITS)) == 0 {
            break;
        }
        device.primitive_launch("sort_pass", nchunks as u64 * 2, || {
            // Phase 1: per-chunk digit histograms.
            let hists: Vec<[u32; RADIX]> = keys
                .par_chunks(chunk)
                .map(|c| {
                    let mut h = [0u32; RADIX];
                    for &k in c {
                        h[digit(k, pass)] += 1;
                    }
                    h
                })
                .collect();

            // Phase 2: digit-major, chunk-minor exclusive scan of counts.
            let mut offsets = vec![[0u32; RADIX]; nchunks];
            let mut acc = 0u32;
            for d in 0..RADIX {
                for c in 0..nchunks {
                    offsets[c][d] = acc;
                    acc += hists[c][d];
                }
            }

            // Phase 3: scatter each chunk's items to their scanned offsets.
            let out_keys = ScatterBuf::<u64>::new(n);
            if vals.is_empty() {
                keys.par_chunks(chunk)
                    .zip(offsets.par_iter())
                    .for_each(|(c, base)| {
                        let mut cursor = *base;
                        for &k in c {
                            let d = digit(k, pass);
                            out_keys.write(cursor[d] as usize, k);
                            cursor[d] += 1;
                        }
                    });
                *keys = out_keys.into_vec();
            } else {
                let out_vals = ScatterBuf::<u32>::new(n);
                keys.par_chunks(chunk)
                    .zip(vals.par_chunks(chunk))
                    .zip(offsets.par_iter())
                    .for_each(|((ck, cv), base)| {
                        let mut cursor = *base;
                        for (&k, &v) in ck.iter().zip(cv.iter()) {
                            let d = digit(k, pass);
                            out_keys.write(cursor[d] as usize, k);
                            out_vals.write(cursor[d] as usize, v);
                            cursor[d] += 1;
                        }
                    });
                *keys = out_keys.into_vec();
                *vals = out_vals.into_vec();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Vec<u64> {
        // xorshift64*; deterministic, no dev-dependency needed here.
        let mut s = seed.max(1);
        (0..n)
            .map(|_| {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                s.wrapping_mul(0x2545F4914F6CDD1D)
            })
            .collect()
    }

    #[test]
    fn sorts_small_input() {
        let dev = Device::default();
        let mut v = vec![5u64, 3, 9, 1, 1, 0];
        sort_u64(&dev, &mut v);
        assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
    }

    #[test]
    fn sorts_large_random_input() {
        let dev = Device::default();
        let mut v = pseudo_random(200_000, 42);
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_u64(&dev, &mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_low_range_keys_with_skipped_passes() {
        let dev = Device::default();
        let mut v: Vec<u64> = pseudo_random(50_000, 7).iter().map(|k| k % 1000).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_u64(&dev, &mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn payload_follows_keys() {
        let dev = Device::default();
        let mut keys = pseudo_random(100_000, 3)
            .iter()
            .map(|k| k % 10_000)
            .collect::<Vec<_>>();
        let mut vals: Vec<u32> = (0..keys.len() as u32).collect();
        let reference: Vec<(u64, u32)> = {
            let mut p: Vec<(u64, u32)> = keys.iter().copied().zip(vals.iter().copied()).collect();
            p.sort_by_key(|&(k, v)| (k, v));
            p
        };
        sort_u64_by_key_u32(&dev, &mut keys, &mut vals);
        // Radix sort is stable, and vals started strictly increasing, so
        // (key, val) pairs must match the reference sorted by both.
        let got: Vec<(u64, u32)> = keys.into_iter().zip(vals).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn empty_and_singleton() {
        let dev = Device::default();
        let mut v: Vec<u64> = vec![];
        sort_u64(&dev, &mut v);
        assert!(v.is_empty());
        let mut v = vec![17u64];
        sort_u64(&dev, &mut v);
        assert_eq!(v, vec![17]);
    }
}
