//! Device-wide histogram (bincount): per-chunk local histograms merged
//! by a tree reduction — the standard GPU formulation (shared-memory
//! bins per block, then a global merge).

use rayon::prelude::*;

use crate::device::Device;

/// Count occurrences of each value in `data` (`values < bins`).
///
/// # Panics
/// If any value is `>= bins` (debug builds assert; release builds would
/// index out of bounds, so the check is unconditional).
pub fn histogram(device: &Device, data: &[u32], bins: usize) -> Vec<usize> {
    if data.is_empty() {
        return device.primitive_launch("histogram", 1, || vec![0; bins]);
    }
    let chunk = data
        .len()
        .div_ceil(rayon::current_num_threads().max(1) * 2)
        .max(1);
    let nchunks = data.len().div_ceil(chunk);
    device.primitive_launch("histogram", nchunks as u64, || {
        data.par_chunks(chunk)
            .map(|c| {
                let mut h = vec![0usize; bins];
                for &v in c {
                    assert!(
                        (v as usize) < bins,
                        "value {v} out of histogram range {bins}"
                    );
                    h[v as usize] += 1;
                }
                h
            })
            .reduce(
                || vec![0usize; bins],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_reference() {
        let dev = Device::default();
        let data: Vec<u32> = (0..100_000).map(|i| (i * 7 + 1) % 97).collect();
        let got = histogram(&dev, &data, 97);
        let mut expect = vec![0usize; 97];
        for &v in &data {
            expect[v as usize] += 1;
        }
        assert_eq!(got, expect);
        assert_eq!(got.iter().sum::<usize>(), data.len());
    }

    #[test]
    fn empty_input() {
        let dev = Device::default();
        assert_eq!(histogram(&dev, &[], 5), vec![0; 5]);
    }

    #[test]
    #[should_panic(expected = "out of histogram range")]
    fn out_of_range_rejected() {
        let dev = Device::default();
        histogram(&dev, &[10], 5);
    }
}
