//! Parallel prefix sums (the workhorse of every two-pass sparse kernel).

use rayon::prelude::*;

use crate::device::Device;
use crate::error::Result;

/// Sequential-cutoff below which a serial scan beats the parallel one.
const SERIAL_CUTOFF: usize = 1 << 14;

/// In-place exclusive prefix sum over `data`, returning the grand total.
///
/// Three-phase Blelloch-style decomposition: per-chunk local sums, a scan
/// of the chunk sums, then a per-chunk rewrite with offsets. Chunks map to
/// blocks, so the launch counter advances by two.
pub fn exclusive_scan(device: &Device, data: &mut [usize]) -> Result<usize> {
    let n = data.len();
    if n == 0 {
        return Ok(0);
    }
    if n <= SERIAL_CUTOFF {
        return Ok(device.primitive_launch("scan_serial", 1, || {
            let mut acc = 0usize;
            for v in data.iter_mut() {
                let x = *v;
                *v = acc;
                acc += x;
            }
            acc
        }));
    }

    let chunk = n.div_ceil(rayon::current_num_threads().max(1) * 4).max(1);
    let nchunks = n.div_ceil(chunk) as u64;
    // Phase 1: local sums per chunk.
    let mut partials: Vec<usize> = device.primitive_launch("scan_partials", nchunks, || {
        data.par_chunks(chunk).map(|c| c.iter().sum()).collect()
    });
    // Phase 2: scan the partials (small, serial).
    let mut acc = 0usize;
    for p in partials.iter_mut() {
        let x = *p;
        *p = acc;
        acc += x;
    }
    // Phase 3: local exclusive scan with offset.
    device.primitive_launch("scan_apply", nchunks, || {
        data.par_chunks_mut(chunk)
            .zip(partials.par_iter())
            .for_each(|(c, &offset)| {
                let mut local = offset;
                for v in c.iter_mut() {
                    let x = *v;
                    *v = local;
                    local += x;
                }
            });
    });
    Ok(acc)
}

/// In-place inclusive prefix sum, returning the grand total.
pub fn inclusive_scan(device: &Device, data: &mut [usize]) -> Result<usize> {
    let originals: Vec<usize> = data.to_vec();
    let total = exclusive_scan(device, data)?;
    data.par_iter_mut()
        .zip(originals.par_iter())
        .for_each(|(d, &o)| *d += o);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(v: &[usize]) -> (Vec<usize>, usize) {
        let mut out = Vec::with_capacity(v.len());
        let mut acc = 0;
        for &x in v {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_scan() {
        let dev = Device::default();
        let mut v: Vec<usize> = vec![];
        assert_eq!(exclusive_scan(&dev, &mut v).unwrap(), 0);
    }

    #[test]
    fn small_scan_matches_reference() {
        let dev = Device::default();
        let mut v = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let (expect, total) = reference_exclusive(&v);
        assert_eq!(exclusive_scan(&dev, &mut v).unwrap(), total);
        assert_eq!(v, expect);
    }

    #[test]
    fn large_scan_matches_reference() {
        let dev = Device::default();
        let mut v: Vec<usize> = (0..100_000).map(|i| (i * 7 + 3) % 13).collect();
        let (expect, total) = reference_exclusive(&v);
        assert_eq!(exclusive_scan(&dev, &mut v).unwrap(), total);
        assert_eq!(v, expect);
    }

    #[test]
    fn inclusive_is_exclusive_shifted() {
        let dev = Device::default();
        let src: Vec<usize> = (0..50_000).map(|i| i % 5).collect();
        let mut inc = src.clone();
        inclusive_scan(&dev, &mut inc).unwrap();
        let (exc, _) = reference_exclusive(&src);
        for i in 0..src.len() {
            assert_eq!(inc[i], exc[i] + src[i]);
        }
    }
}
