//! Cooperative cancellation for long device workloads.
//!
//! Fixpoint algorithms (closures, CFPQ iterations) run unbounded chains
//! of kernel launches; a serving layer needs to stop one mid-flight
//! without tearing the device down. A [`StopToken`] is armed on a
//! [`crate::Device`] before the work starts; every launch entry point
//! performs a cheap `should_stop` check *between* launches (never
//! inside a running kernel, mirroring how real GPUs cannot preempt a
//! grid) and refuses with a typed [`DeviceError`] once the token is
//! cancelled or its deadline has elapsed. The error unwinds through the
//! caller's `?` chain; buffer RAII releases device memory on the way
//! out, so the device pool is immediately reusable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::DeviceError;

#[derive(Debug)]
struct StopState {
    cancelled: AtomicBool,
    /// When the token was armed (deadline reference point).
    armed_at: Instant,
    /// Wall-clock budget measured from `armed_at`, if any.
    budget: Option<Duration>,
}

/// A cloneable cancellation handle. Clones share state: cancelling any
/// clone stops every device the token is installed on at its next
/// launch boundary.
#[derive(Debug, Clone)]
pub struct StopToken {
    state: Arc<StopState>,
}

impl Default for StopToken {
    fn default() -> Self {
        StopToken::new()
    }
}

impl StopToken {
    /// A token with no deadline; stops only on explicit [`cancel`].
    ///
    /// [`cancel`]: StopToken::cancel
    pub fn new() -> Self {
        StopToken {
            state: Arc::new(StopState {
                cancelled: AtomicBool::new(false),
                armed_at: Instant::now(),
                budget: None,
            }),
        }
    }

    /// A token whose [`StopToken::should_stop`] trips once `budget` of
    /// wall time has elapsed from creation.
    pub fn with_deadline(budget: Duration) -> Self {
        StopToken {
            state: Arc::new(StopState {
                cancelled: AtomicBool::new(false),
                armed_at: Instant::now(),
                budget: Some(budget),
            }),
        }
    }

    /// Request cancellation. Idempotent; takes effect at the next
    /// launch boundary of any device the token is installed on.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](StopToken::cancel) has been called (does not
    /// consider the deadline).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::Relaxed)
    }

    /// The typed error this token currently mandates, if any: explicit
    /// cancellation wins over the deadline.
    pub fn should_stop(&self) -> Option<DeviceError> {
        if self.state.cancelled.load(Ordering::Relaxed) {
            return Some(DeviceError::Cancelled);
        }
        if let Some(budget) = self.state.budget {
            let elapsed = self.state.armed_at.elapsed();
            if elapsed > budget {
                return Some(DeviceError::DeadlineExceeded {
                    elapsed_ms: elapsed.as_millis() as u64,
                    budget_ms: budget.as_millis() as u64,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = StopToken::new();
        let u = t.clone();
        assert!(t.should_stop().is_none());
        u.cancel();
        assert!(matches!(t.should_stop(), Some(DeviceError::Cancelled)));
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_trips_after_budget() {
        let t = StopToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(
            t.should_stop(),
            Some(DeviceError::DeadlineExceeded { .. })
        ));
        // Explicit cancellation takes precedence in the report.
        t.cancel();
        assert!(matches!(t.should_stop(), Some(DeviceError::Cancelled)));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let t = StopToken::with_deadline(Duration::from_secs(3600));
        assert!(t.should_stop().is_none());
    }
}
