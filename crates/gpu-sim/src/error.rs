//! Device error type.

use std::fmt;

/// Errors raised by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation would exceed the configured global-memory size.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes currently allocated on the device.
        in_use: usize,
        /// Configured device capacity.
        capacity: usize,
    },
    /// A launch was configured with a zero-sized grid or block.
    InvalidLaunch(String),
    /// Output partition handed to [`crate::Device::launch`] was not a
    /// disjoint ascending cover of the output buffer.
    BadPartition(String),
    /// The installed [`crate::StopToken`] was cancelled; the launch was
    /// refused before executing any block. Cooperative cancellation
    /// (the serving layer's kill switch) surfaces here.
    Cancelled,
    /// The installed [`crate::StopToken`]'s deadline elapsed before this
    /// launch started.
    DeadlineExceeded {
        /// Milliseconds elapsed since the token was armed.
        elapsed_ms: u64,
        /// The token's budget in milliseconds.
        budget_ms: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use} B in use of {capacity} B"
            ),
            DeviceError::InvalidLaunch(msg) => write!(f, "invalid kernel launch: {msg}"),
            DeviceError::BadPartition(msg) => write!(f, "bad output partition: {msg}"),
            DeviceError::Cancelled => write!(f, "launch cancelled by stop token"),
            DeviceError::DeadlineExceeded {
                elapsed_ms,
                budget_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed of a {budget_ms} ms budget"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DeviceError>;
