//! Property tests for the device-wide primitives: every parallel
//! implementation must agree with its obvious sequential counterpart on
//! arbitrary inputs, and launch/memory accounting must stay consistent.

use proptest::prelude::*;

use spbla_gpu_sim::primitives::compact::{compact_flagged, compact_indices};
use spbla_gpu_sim::primitives::merge::{merge_path_partition, merge_path_partitions};
use spbla_gpu_sim::primitives::reduce::{reduce_max, reduce_sum};
use spbla_gpu_sim::primitives::scan::{exclusive_scan, inclusive_scan};
use spbla_gpu_sim::primitives::sort::{sort_u64, sort_u64_by_key_u32};
use spbla_gpu_sim::{Device, DeviceBuffer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exclusive_scan_matches_reference(v in proptest::collection::vec(0usize..1000, 0..4000)) {
        let dev = Device::default();
        let mut got = v.clone();
        let total = exclusive_scan(&dev, &mut got).unwrap();
        let mut acc = 0usize;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_scan_is_shifted_exclusive(v in proptest::collection::vec(0usize..100, 0..2000)) {
        let dev = Device::default();
        let mut inc = v.clone();
        let t1 = inclusive_scan(&dev, &mut inc).unwrap();
        let mut exc = v.clone();
        let t2 = exclusive_scan(&dev, &mut exc).unwrap();
        prop_assert_eq!(t1, t2);
        for i in 0..v.len() {
            prop_assert_eq!(inc[i], exc[i] + v[i]);
        }
    }

    #[test]
    fn sort_matches_std(mut v in proptest::collection::vec(any::<u64>(), 0..5000)) {
        let dev = Device::default();
        let mut expect = v.clone();
        expect.sort_unstable();
        sort_u64(&dev, &mut v);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn keyed_sort_is_stable_permutation(keys in proptest::collection::vec(0u64..64, 0..3000)) {
        let dev = Device::default();
        let mut k = keys.clone();
        let mut vals: Vec<u32> = (0..keys.len() as u32).collect();
        sort_u64_by_key_u32(&dev, &mut k, &mut vals);
        //

        // Keys sorted; payload is a permutation; stability: equal keys
        // keep their original relative order (vals increasing).
        prop_assert!(k.windows(2).all(|w| w[0] <= w[1]));
        let mut seen = vec![false; vals.len()];
        for &p in &vals {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        for w in 0..k.len().saturating_sub(1) {
            if k[w] == k[w + 1] {
                prop_assert!(vals[w] < vals[w + 1], "stability violated at {w}");
            }
        }
        // Payload still pairs with its original key.
        for (i, &p) in vals.iter().enumerate() {
            prop_assert_eq!(k[i], keys[p as usize]);
        }
    }

    #[test]
    fn compaction_matches_filter(
        data in proptest::collection::vec(any::<u32>(), 0..2000),
        seed in any::<u64>(),
    ) {
        let dev = Device::default();
        let flags: Vec<u8> = data
            .iter()
            .enumerate()
            .map(|(i, _)| ((seed >> (i % 64)) & 1) as u8)
            .collect();
        let got = compact_flagged(&dev, &data, &flags).unwrap();
        let expect: Vec<u32> = data
            .iter()
            .zip(&flags)
            .filter(|(_, &f)| f != 0)
            .map(|(&d, _)| d)
            .collect();
        prop_assert_eq!(got, expect);
        let idx = compact_indices(&dev, &flags).unwrap();
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(idx.len(), flags.iter().filter(|&&f| f != 0).count());
    }

    #[test]
    fn reductions_match(v in proptest::collection::vec(0usize..10_000, 0..3000)) {
        let dev = Device::default();
        prop_assert_eq!(reduce_sum(&dev, &v), v.iter().sum::<usize>());
        prop_assert_eq!(reduce_max(&dev, &v), v.iter().copied().max());
    }

    #[test]
    fn merge_path_reconstructs_any_merge(
        mut a in proptest::collection::vec(0u32..500, 0..400),
        mut b in proptest::collection::vec(0u32..500, 0..400),
        parts in 1usize..12,
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let points = merge_path_partitions(&a, &b, parts);
        prop_assert_eq!(points.len(), parts + 1);
        let mut merged: Vec<u32> = Vec::with_capacity(a.len() + b.len());
        for w in points.windows(2) {
            let (s, e) = (w[0], w[1]);
            let (mut i, mut j) = (s.a_idx, s.b_idx);
            while i < e.a_idx || j < e.b_idx {
                if j >= e.b_idx || (i < e.a_idx && a[i] <= b[j]) {
                    merged.push(a[i]);
                    i += 1;
                } else {
                    merged.push(b[j]);
                    j += 1;
                }
            }
        }
        let mut expect = [a.clone(), b.clone()].concat();
        expect.sort_unstable();
        prop_assert_eq!(merged, expect);
        // Each diagonal's crossing point is consistent.
        let mid = merge_path_partition(&a, &b, (a.len() + b.len()) / 2);
        prop_assert_eq!(mid.a_idx + mid.b_idx, (a.len() + b.len()) / 2);
    }

    #[test]
    fn merge_path_crossing_matches_scalar_reference(
        mut a in proptest::collection::vec(0u8..8, 0..64),
        mut b in proptest::collection::vec(0u8..8, 0..64),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        // Tiny value range forces heavy duplicate runs; check the exact
        // (a_idx, b_idx) crossing — not just merged values — against a
        // scalar stable merge that consumes `a` first on ties.
        for diag in 0..=(a.len() + b.len()) {
            let got = merge_path_partition(&a, &b, diag);
            let (mut i, mut j) = (0usize, 0usize);
            while i + j < diag {
                if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            prop_assert_eq!(got, spbla_gpu_sim::primitives::merge::MergePoint { a_idx: i, b_idx: j });
        }
    }

    #[test]
    fn buffer_accounting_balances(lens in proptest::collection::vec(1usize..4096, 1..20)) {
        let dev = Device::default();
        {
            let buffers: Vec<DeviceBuffer<u32>> = lens
                .iter()
                .map(|&l| DeviceBuffer::zeroed(&dev, l).unwrap())
                .collect();
            let expect: usize = lens.iter().map(|&l| l * 4).sum();
            prop_assert_eq!(dev.stats().bytes_in_use, expect);
            drop(buffers);
        }
        prop_assert_eq!(dev.stats().bytes_in_use, 0);
        prop_assert_eq!(dev.stats().allocations, lens.len() as u64);
    }
}

#[test]
fn launches_are_counted_monotonically() {
    let dev = Device::default();
    let before = dev.stats().launches;
    let mut out = vec![0usize; 10_000];
    dev.launch_map(&mut out, |i| i).unwrap();
    let mut v: Vec<usize> = (0..50_000).map(|i| i % 7).collect();
    exclusive_scan(&dev, &mut v).unwrap();
    let mut keys: Vec<u64> = (0..20_000u64).rev().collect();
    sort_u64(&dev, &mut keys);
    assert!(dev.stats().launches > before);
}
