//! The `spbla` binary: thin wrapper over the library in `lib.rs`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(e) = spbla_cli::run(&args, &mut stdout) {
        eprintln!("{}", e.message);
        std::process::exit(e.code);
    }
}
