//! Implementation of the `spbla` command-line tool.
//!
//! ```text
//! spbla generate <shape> [--scale S] [--seed N] [--out FILE]
//! spbla stats <graph.triples>
//! spbla rpq <graph.triples> <regex> [--backend B] [--source V] [--limit K]
//! spbla cfpq <graph.triples> <grammar-file|@G1|@G2|@Geo|@MA> [--engine tns|mtx] [--backend B]
//! spbla closure <graph.triples> [--backend B] [--devices N]
//! spbla bfs <graph.triples> <source>
//! spbla engine [graph.triples] [--devices N] [--clients C] [--requests R]
//! spbla load [graph.triples] [--rate R] [--requests N] [--sweep on|off]
//! spbla recover <dir> [--graph NAME] [--devices N]
//! ```
//!
//! The logic lives in this library crate so it is unit-testable; the
//! binary is a thin `main` that maps the exit code.

use std::io::Write;

use spbla_core::Instance;
use spbla_data::grammars;
use spbla_data::io::{load_graph, save_graph};
use spbla_data::stats::GraphStats;
use spbla_graph::bfs::bfs_levels;
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::cfpq::tensor::{TnsIndex, TnsOptions};
use spbla_graph::closure::{closure_delta, closure_delta_dist};
use spbla_graph::rpq::{RpqIndex, RpqOptions};
use spbla_graph::rpq_bfs::rpq_from_sources;
use spbla_graph::LabeledGraph;
use spbla_lang::{Grammar, Regex, SymbolTable};

/// Errors surfaced to the user (message + suggested exit code).
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }

    fn run(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }
}

impl<E: std::error::Error> From<E> for CliError {
    fn from(e: E) -> CliError {
        CliError::run(e.to_string())
    }
}

/// Tiny flag parser: positionals plus `--key value` options.
struct Args {
    positional: Vec<String>,
    options: Vec<(String, String)>,
}

impl Args {
    fn parse(args: &[String]) -> Result<Args, CliError> {
        let mut positional = Vec::new();
        let mut options = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("--{key} requires a value")))?;
                options.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args {
            positional,
            options,
        })
    }

    fn opt(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn backend_instance(name: Option<&str>) -> Result<Instance, CliError> {
    Ok(match name.unwrap_or("cuda") {
        "cpu" => Instance::cpu(),
        "dense" => Instance::cpu_dense(),
        "cuda" => Instance::cuda_sim(),
        "cl" => Instance::cl_sim(),
        other => {
            return Err(CliError::usage(format!(
                "unknown backend '{other}' (cpu | dense | cuda | cl)"
            )))
        }
    })
}

/// Run the CLI with `args` (excluding the program name), writing to
/// `out`. Returns the exit code via `CliError` on failure.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::usage(USAGE));
    };
    let rest = Args::parse(&args[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&rest, out),
        "stats" => cmd_stats(&rest, out),
        "rpq" => cmd_rpq(&rest, out),
        "cfpq" => cmd_cfpq(&rest, out),
        "closure" => cmd_closure(&rest, out),
        "bfs" => cmd_bfs(&rest, out),
        "engine" => cmd_engine(&rest, out),
        "stream" => cmd_stream(&rest, out),
        "load" => cmd_load(&rest, out),
        "recover" => cmd_recover(&rest, out),
        "trace" => cmd_trace(&rest, out),
        "triangles" => cmd_triangles(&rest, out),
        "components" => cmd_components(&rest, out),
        "help" | "--help" | "-h" => writeln!(out, "{USAGE}").map_err(CliError::from),
        other => Err(CliError::usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "usage: spbla <command>\n\
  generate <lubm|taxonomy|geospecies|go|go-hierarchy|eclass|enzyme|alias> \n\
           [--scale S] [--seed N] [--out FILE] [--inverses yes]\n\
  stats    <graph.triples>\n\
  rpq      <graph.triples> <regex> [--backend cpu|dense|cuda|cl] [--source V] [--limit K]\n\
  cfpq     <graph.triples> <grammar-file|@G1|@G2|@Geo|@MA> [--engine tns|mtx] [--backend B] [--limit K]\n\
  closure  <graph.triples> [--backend B] [--devices N] [--condense on|off]\n\
           (N>1 shards over a device grid; --condense on runs the fixpoint on the\n\
            SCC condensation DAG and expands back — bit-identical, fewer launches)\n\
  bfs      <graph.triples> <source>\n\
  triangles  <graph.triples>   (symmetrises, counts triangles)\n\
  components <graph.triples>   (weak + strong component counts)\n\
  engine   [graph.triples] [--devices N] [--clients C] [--requests R] [--seed S]\n\
           [--queue CAP] [--batching on|off] [--plan-cache on|off] [--deadline-ms MS]\n\
           (closed-loop mixed RPQ/CFPQ serving; generates a LUBM fixture if no graph given)\n\
  stream   [graph.triples] [--devices N] [--batches B] [--batch-size K] [--deletes on|off]\n\
           [--seed S] [--mode incremental|recompute|both] [--wal DIR]\n\
           (replay a random update stream through the versioned store; --mode both\n\
            cross-checks incremental maintenance against per-batch recompute;\n\
            --wal durably logs the stream for `spbla recover`)\n\
  load     [graph.triples] [--devices N] [--rate R] [--requests N] [--seed S]\n\
           [--queue CAP] [--interactive-fraction F] [--deadline-ms MS]\n\
           [--write-fraction F] [--sweep on|off]\n\
           (open-loop seeded-Poisson load against the serving engine: arrivals\n\
            fire on schedule, rejections are counted, latency includes schedule\n\
            slip — no coordinated omission; --write-fraction mixes update\n\
            batches into the stream on the batch tier; --sweep walks a rate\n\
            ladder to the saturation point)\n\
  recover  <dir> [--graph NAME] [--devices N]\n\
           (rebuild an engine from a durability directory: latest good checkpoint\n\
            plus write-ahead-log tail replay, then serve a closure query from the\n\
            recovered state)\n\
  trace    [graph.triples] [--regex R] [--backend cuda|cl] [--out FILE] [--capacity N]\n\
           [--seed S]\n\
           (run an RPQ with kernel tracing on and write a chrome://tracing JSON\n\
            timeline; cross-checks span count against the device launch counter)";

fn cmd_generate(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let shape = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("generate: missing shape"))?;
    let scale: f64 = args
        .opt("scale")
        .unwrap_or("0.01")
        .parse()
        .map_err(|e| CliError::usage(format!("bad --scale: {e}")))?;
    let seed: u64 = args
        .opt("seed")
        .unwrap_or("1")
        .parse()
        .map_err(|e| CliError::usage(format!("bad --seed: {e}")))?;
    let mut table = SymbolTable::new();
    let mut graph = match shape.as_str() {
        "lubm" => spbla_data::lubm::lubm_like(
            (scale * 200.0).max(1.0) as usize,
            &spbla_data::lubm::LubmConfig::default(),
            &mut table,
            seed,
        ),
        "taxonomy" => spbla_data::rdf::taxonomy_like(scale, &mut table, seed),
        "geospecies" => spbla_data::rdf::geospecies_like(scale, &mut table, seed),
        "go" => spbla_data::rdf::go_like(scale, &mut table, seed),
        "go-hierarchy" => spbla_data::rdf::go_hierarchy_like(scale, &mut table, seed),
        "eclass" => spbla_data::rdf::eclass_like(scale, &mut table, seed),
        "enzyme" => spbla_data::rdf::enzyme_like(scale, &mut table, seed),
        "alias" => spbla_data::alias::kernel_module_like("arch", scale * 10.0, &mut table, seed),
        other => return Err(CliError::usage(format!("unknown shape '{other}'"))),
    };
    if args.opt("inverses") == Some("yes") {
        graph = graph.with_inverses(&mut table);
    }
    match args.opt("out") {
        Some(path) => {
            save_graph(&graph, &table, path)?;
            writeln!(
                out,
                "wrote {} vertices / {} edges to {path}",
                graph.n_vertices(),
                graph.n_edges()
            )?;
        }
        None => spbla_data::io::write_triples(&graph, &table, &mut *out)?,
    }
    Ok(())
}

fn load(args: &Args, table: &mut SymbolTable) -> Result<LabeledGraph, CliError> {
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::usage("missing graph file"))?;
    Ok(load_graph(path, table)?)
}

fn cmd_stats(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut table = SymbolTable::new();
    let graph = load(args, &mut table)?;
    let stats = GraphStats::of(
        args.positional
            .first()
            .map(String::as_str)
            .unwrap_or("graph"),
        &graph,
        &table,
    );
    writeln!(out, "{stats}")?;
    for (label, count) in &stats.label_counts {
        writeln!(out, "  {label:<30} {count}")?;
    }
    Ok(())
}

fn cmd_rpq(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut table = SymbolTable::new();
    let graph = load(args, &mut table)?;
    let pattern = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("rpq: missing regex"))?;
    let regex = Regex::parse(pattern, &mut table).map_err(CliError::run)?;
    let inst = backend_instance(args.opt("backend"))?;
    let limit: usize = args
        .opt("limit")
        .unwrap_or("10")
        .parse()
        .map_err(|e| CliError::usage(format!("bad --limit: {e}")))?;

    if let Some(src) = args.opt("source") {
        let src: u32 = src
            .parse()
            .map_err(|e| CliError::usage(format!("bad --source: {e}")))?;
        let reached = rpq_from_sources(&graph, &regex, &[src], &inst)?;
        writeln!(out, "{} vertices reachable from {src}", reached.len())?;
        for v in reached.iter().take(limit) {
            writeln!(out, "  {src} -> {v}")?;
        }
        return Ok(());
    }
    let idx = RpqIndex::build(&graph, &regex, &inst, &RpqOptions::default())?;
    let pairs = idx.reachable_pairs()?;
    writeln!(
        out,
        "{} pairs (index nnz {}, {} automaton states)",
        pairs.len(),
        idx.index_nnz(),
        idx.automaton_states()
    )?;
    for (u, v) in pairs.iter().take(limit) {
        writeln!(out, "  {u} -> {v}")?;
    }
    Ok(())
}

fn cmd_cfpq(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut table = SymbolTable::new();
    let graph = load(args, &mut table)?;
    let gref = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("cfpq: missing grammar"))?;
    let grammar = match gref.as_str() {
        "@G1" => grammars::grammar_g1(&mut table),
        "@G2" => grammars::grammar_g2(&mut table),
        "@Geo" => grammars::grammar_geo(&mut table),
        "@MA" => grammars::grammar_ma(&mut table),
        path => {
            let text = std::fs::read_to_string(path)?;
            Grammar::parse(&text, &mut table).map_err(CliError::run)?
        }
    };
    let inst = backend_instance(args.opt("backend"))?;
    let limit: usize = args
        .opt("limit")
        .unwrap_or("10")
        .parse()
        .map_err(|e| CliError::usage(format!("bad --limit: {e}")))?;
    let pairs = match args.opt("engine").unwrap_or("tns") {
        "tns" => {
            let idx = TnsIndex::build(&graph, &grammar, &inst, &TnsOptions::default())?;
            writeln!(
                out,
                "tensor index: nnz {}, {} iterations",
                idx.index_nnz(),
                idx.iterations()
            )?;
            idx.reachable_pairs()
        }
        "mtx" => {
            let cnf = spbla_lang::CnfGrammar::from_grammar(&grammar);
            let idx = AzimovIndex::build(&graph, &cnf, &inst, &AzimovOptions::default())?;
            writeln!(out, "matrix index: {} iterations", idx.iterations())?;
            idx.reachable_pairs()
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown engine '{other}' (tns | mtx)"
            )))
        }
    };
    writeln!(out, "{} pairs", pairs.len())?;
    for (u, v) in pairs.iter().take(limit) {
        writeln!(out, "  {u} -> {v}")?;
    }
    Ok(())
}

fn cmd_closure(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut table = SymbolTable::new();
    let graph = load(args, &mut table)?;
    let condense = opt_on_off(args, "condense", false)?;
    if condense && args.opt("devices").is_some() {
        return Err(CliError::usage(
            "--condense runs on a single instance; drop --devices",
        ));
    }
    if let Some(devices) = args.opt("devices") {
        let devices: usize = devices
            .parse()
            .map_err(|e| CliError::usage(format!("bad --devices: {e}")))?;
        if devices == 0 {
            return Err(CliError::usage("--devices must be at least 1"));
        }
        let backend = match args.opt("backend").unwrap_or("cuda") {
            "cuda" => spbla_core::Backend::CudaSim,
            "cl" => spbla_core::Backend::ClSim,
            other => {
                return Err(CliError::usage(format!(
                    "backend '{other}' has no device; --devices needs cuda or cl"
                )))
            }
        };
        let grid = spbla_multidev::DeviceGrid::uniform(
            devices,
            backend,
            spbla_multidev::DeviceConfig::default(),
        )?;
        let csr = graph.adjacency_csr();
        let closure = closure_delta_dist(&csr, &grid)?;
        let stats = grid.total_stats();
        writeln!(
            out,
            "closure: {} -> {} pairs on {devices} devices \
             (max per-device peak {} bytes, d2d {} bytes)",
            csr.nnz(),
            closure.nnz(),
            grid.max_peak_bytes(),
            stats.d2d_bytes
        )?;
        return Ok(());
    }
    let inst = backend_instance(args.opt("backend"))?;
    if condense {
        let csr = graph.adjacency_csr();
        let (closure, stats) =
            spbla_prep::condensed_closure(&inst, graph.n_vertices(), &csr.to_pairs())?;
        writeln!(
            out,
            "closure (condensed): {} -> {} pairs; {} SCCs of {} vertices \
             ({} levels, {} rounds on the DAG)",
            csr.nnz(),
            closure.nnz(),
            stats.n_components,
            stats.n_vertices,
            stats.levels,
            stats.rounds
        )?;
        return Ok(());
    }
    let adjacency = spbla_core::Matrix::from_csr(&inst, graph.adjacency_csr())?;
    let closure = closure_delta(&adjacency)?;
    writeln!(
        out,
        "closure: {} -> {} pairs ({} bytes)",
        adjacency.nnz(),
        closure.nnz(),
        closure.memory_bytes()
    )?;
    Ok(())
}

fn cmd_triangles(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut table = SymbolTable::new();
    let graph = load(args, &mut table)?;
    // Symmetrise and drop self-loops before counting.
    let csr = graph.adjacency_csr();
    let mut sym: Vec<(u32, u32)> = Vec::with_capacity(csr.nnz() * 2);
    for (u, v) in csr.iter() {
        if u != v {
            sym.push((u, v));
            sym.push((v, u));
        }
    }
    let adj = spbla_core::CsrBool::from_pairs(graph.n_vertices(), graph.n_vertices(), &sym)
        .map_err(|e| CliError::run(e.to_string()))?;
    let count = spbla_graph::algorithms::triangle_count(&adj);
    writeln!(out, "{count} triangles (undirected, self-loops dropped)")?;
    Ok(())
}

fn cmd_components(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut table = SymbolTable::new();
    let graph = load(args, &mut table)?;
    let inst = Instance::cuda_sim();
    let adjacency = spbla_core::Matrix::from_csr(&inst, graph.adjacency_csr())?;
    let wcc = spbla_graph::algorithms::weakly_connected_components(&adjacency, &inst)?;
    let scc = spbla_graph::algorithms::strongly_connected_components(&adjacency, &inst)?;
    let nw = wcc.iter().max().map_or(0, |&m| m + 1);
    let ns = scc.iter().max().map_or(0, |&m| m + 1);
    writeln!(out, "{nw} weak components, {ns} strong components")?;
    Ok(())
}

fn cmd_bfs(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let mut table = SymbolTable::new();
    let graph = load(args, &mut table)?;
    let src: u32 = args
        .positional
        .get(1)
        .ok_or_else(|| CliError::usage("bfs: missing source vertex"))?
        .parse()
        .map_err(|e| CliError::usage(format!("bad source: {e}")))?;
    let inst = Instance::cuda_sim();
    let adjacency = spbla_core::Matrix::from_csr(&inst, graph.adjacency_csr())?;
    let levels = bfs_levels(&adjacency, src, &inst)?;
    let reached = levels.iter().flatten().count();
    let depth = levels.iter().flatten().max().copied().unwrap_or(0);
    writeln!(out, "reached {reached} vertices, eccentricity {depth}")?;
    Ok(())
}

fn opt_parse<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    match args.opt(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|e| CliError::usage(format!("bad --{key}: {e}"))),
    }
}

fn opt_on_off(args: &Args, key: &str, default: bool) -> Result<bool, CliError> {
    match args.opt(key) {
        None => Ok(default),
        Some("on") => Ok(true),
        Some("off") => Ok(false),
        Some(other) => Err(CliError::usage(format!("bad --{key} '{other}' (on | off)"))),
    }
}

fn cmd_engine(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use spbla_engine::{Engine, EngineConfig, Query};

    let devices: usize = opt_parse(args, "devices", 2)?;
    if devices == 0 {
        return Err(CliError::usage("--devices must be at least 1"));
    }
    let clients: usize = opt_parse(args, "clients", 4)?;
    if clients == 0 {
        return Err(CliError::usage("--clients must be at least 1"));
    }
    let requests: usize = opt_parse(args, "requests", 64)?;
    let seed: u64 = opt_parse(args, "seed", 1)?;
    let queue_capacity: usize = opt_parse(args, "queue", 256)?;
    let batching = opt_on_off(args, "batching", true)?;
    let plan_cache = opt_on_off(args, "plan-cache", true)?;
    let deadline = args
        .opt("deadline-ms")
        .map(|v| {
            v.parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|e| CliError::usage(format!("bad --deadline-ms: {e}")))
        })
        .transpose()?;

    let engine = Engine::new(
        spbla_multidev::DeviceGrid::new(devices),
        EngineConfig {
            queue_capacity,
            plan_cache,
            batching,
            ..EngineConfig::default()
        },
    );
    let graph = match args.positional.first() {
        Some(path) => engine.with_symbols(|table| load_graph(path, table))?,
        None => engine.with_symbols(|table| {
            spbla_data::lubm::lubm_like(1, &spbla_data::lubm::LubmConfig::default(), table, seed)
        }),
    };
    let n_vertices = graph.n_vertices();
    // The two busiest labels drive the query templates, so the workload
    // adapts to whatever graph was loaded.
    let (l1, l2) = engine.with_symbols(|table| {
        let mut labels: Vec<(usize, String)> = graph
            .labels()
            .into_iter()
            .map(|s| (graph.label_count(s), table.name(s).to_string()))
            .collect();
        labels.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let l1 = labels
            .first()
            .map(|(_, n)| n.clone())
            .ok_or_else(|| CliError::run("graph has no labelled edges"))?;
        let l2 = labels.get(1).map_or_else(|| l1.clone(), |(_, n)| n.clone());
        Ok::<_, CliError>((l1, l2))
    })?;
    engine.add_graph("g", graph);

    // Mixed closed-loop workload: mostly batchable single-source RPQs,
    // with all-pairs RPQ and CFPQ requests sprinkled in.
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let workload: Vec<Query> = (0..requests)
        .map(|i| match i % 8 {
            3 => Query::Rpq(format!("{l1} . {l2}")),
            7 => Query::Cfpq(format!("S -> {l1} S | {l1}")),
            _ => Query::RpqFromSource {
                text: format!("{l1}*"),
                source: (next() % u64::from(n_vertices.max(1))) as u32,
            },
        })
        .collect();

    let engine = std::sync::Arc::new(engine);
    let workload = std::sync::Arc::new(workload);
    let started = std::time::Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let engine = std::sync::Arc::clone(&engine);
            let workload = std::sync::Arc::clone(&workload);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut errors = 0u64;
                let mut lat_sum = std::time::Duration::ZERO;
                let mut lat_max = std::time::Duration::ZERO;
                for (i, query) in workload.iter().enumerate() {
                    if i % clients != c {
                        continue;
                    }
                    // Closed loop: submit, await, then move on; retry
                    // briefly when admission control pushes back.
                    let ticket = loop {
                        match engine.submit_with_deadline("g", query.clone(), deadline) {
                            Ok(t) => break Some(t),
                            Err(spbla_engine::EngineError::Overloaded { .. }) => {
                                std::thread::yield_now();
                            }
                            Err(_) => break None,
                        }
                    };
                    let Some(ticket) = ticket else {
                        errors += 1;
                        continue;
                    };
                    let done = ticket.wait();
                    match done.result {
                        Ok(_) => {
                            ok += 1;
                            lat_sum += done.metrics.latency;
                            lat_max = lat_max.max(done.metrics.latency);
                        }
                        Err(_) => errors += 1,
                    }
                }
                (ok, errors, lat_sum, lat_max)
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut errors = 0u64;
    let mut lat_sum = std::time::Duration::ZERO;
    let mut lat_max = std::time::Duration::ZERO;
    for h in handles {
        let (o, e, s, m) = h.join().expect("client thread survives");
        ok += o;
        errors += e;
        lat_sum += s;
        lat_max = lat_max.max(m);
    }
    let wall = started.elapsed();
    let engine =
        std::sync::Arc::try_unwrap(engine).unwrap_or_else(|_| unreachable!("all clients joined"));
    let stats = engine.shutdown();

    writeln!(
        out,
        "served {requests} requests from {clients} clients on {devices} devices in {:.2}s \
         ({:.1} req/s)",
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9)
    )?;
    writeln!(
        out,
        "  completed {ok}, errors {errors} (deadline-exceeded {}, cancelled {}, failed {})",
        stats.deadline_exceeded, stats.cancelled, stats.failed
    )?;
    if ok > 0 {
        writeln!(
            out,
            "  latency mean {:.2} ms, max {:.2} ms",
            lat_sum.as_secs_f64() * 1000.0 / ok as f64,
            lat_max.as_secs_f64() * 1000.0
        )?;
    }
    writeln!(
        out,
        "  plan cache {} hits / {} misses; residency {} hits / {} misses / {} evictions",
        stats.plan_hits,
        stats.plan_misses,
        stats.residency_hits,
        stats.residency_misses,
        stats.residency_evictions
    )?;
    let launches: u64 = stats.devices.iter().map(|d| d.launches).sum();
    writeln!(
        out,
        "  queue depth high-water {}, batches {} ({} requests coalesced), {} kernel launches",
        stats.queue_depth_hwm, stats.batches, stats.batched_requests, launches
    )?;
    Ok(())
}

fn cmd_trace(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    let out_path = args.opt("out").unwrap_or("trace.json").to_string();
    let capacity: usize = opt_parse(args, "capacity", 65_536)?;
    if capacity == 0 {
        return Err(CliError::usage("--capacity must be at least 1"));
    }
    let seed: u64 = opt_parse(args, "seed", 1)?;
    let inst = match args.opt("backend").unwrap_or("cuda") {
        "cuda" => Instance::cuda_sim(),
        "cl" => Instance::cl_sim(),
        other => {
            return Err(CliError::usage(format!(
                "backend '{other}' has no launch counter to cross-check; \
                 trace needs cuda or cl"
            )))
        }
    };
    let device = inst.device().expect("device-backed backend");

    let mut table = SymbolTable::new();
    let graph = match args.positional.first() {
        Some(path) => load_graph(path, &mut table)?,
        None => spbla_data::lubm::lubm_like(
            1,
            &spbla_data::lubm::LubmConfig::default(),
            &mut table,
            seed,
        ),
    };
    let pattern = match args.opt("regex") {
        Some(r) => r.to_string(),
        // The LUBM fixture always has these labels; for a user graph
        // fall back to a star over its busiest label.
        None if args.positional.is_empty() => "memberOf . subOrganizationOf*".to_string(),
        None => {
            let busiest = graph
                .labels()
                .into_iter()
                .max_by_key(|&s| graph.label_count(s))
                .ok_or_else(|| CliError::run("graph has no labelled edges"))?;
            format!("{}*", table.name(busiest))
        }
    };
    let regex = Regex::parse(&pattern, &mut table).map_err(CliError::run)?;

    let trace = spbla_obs::trace_global();
    trace.enable(capacity);
    let launches_before = device.stats().launches;
    let result: Result<_, CliError> = (|| {
        let idx = RpqIndex::build(&graph, &regex, &inst, &RpqOptions::default())?;
        Ok((idx.reachable_pairs()?.len(), idx.index_nnz()))
    })();
    let launches = device.stats().launches - launches_before;
    let snapshot = trace.snapshot();
    let chrome_json = trace.render_chrome_json();
    trace.disable();
    let (pairs, nnz) = result?;

    // Every counted launch on this device must appear as a kernel span
    // on its track — the trace is only useful if it is complete.
    let kernel_spans = snapshot
        .spans
        .iter()
        .filter(|s| s.cat == "kernel" && s.track == device.ordinal())
        .count() as u64;
    std::fs::write(&out_path, chrome_json)
        .map_err(|e| CliError::run(format!("writing {out_path}: {e}")))?;
    writeln!(
        out,
        "rpq '{pattern}': {pairs} pairs (index nnz {nnz})\n\
         traced {} spans ({} dropped) -> {out_path}\n\
         kernel spans {kernel_spans} / device launches {launches}",
        snapshot.spans.len(),
        snapshot.dropped,
    )?;
    if snapshot.dropped > 0 {
        writeln!(
            out,
            "warning: ring overflowed; raise --capacity for a complete timeline"
        )?;
    } else if kernel_spans != launches {
        return Err(CliError::run(format!(
            "trace incomplete: {kernel_spans} kernel spans but {launches} launches"
        )));
    }
    Ok(())
}

fn cmd_stream(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use spbla_lang::Symbol;
    use spbla_multidev::DeviceGrid;
    use spbla_stream::{GraphStream, MaintainConfig, MaintainMode, UpdateBatch};

    let devices: usize = opt_parse(args, "devices", 2)?;
    if devices == 0 {
        return Err(CliError::usage("--devices must be at least 1"));
    }
    let batches: usize = opt_parse(args, "batches", 20)?;
    let batch_size: usize = opt_parse(args, "batch-size", 4)?;
    let seed: u64 = opt_parse(args, "seed", 1)?;
    let deletes = opt_on_off(args, "deletes", true)?;
    let mode = args.opt("mode").unwrap_or("both");
    if !matches!(mode, "incremental" | "recompute" | "both") {
        return Err(CliError::usage(format!(
            "bad --mode '{mode}' (incremental | recompute | both)"
        )));
    }

    let mut table = SymbolTable::new();
    let graph = match args.positional.first() {
        Some(path) => load_graph(path, &mut table)?,
        None => spbla_data::lubm::lubm_like(
            1,
            &spbla_data::lubm::LubmConfig::default(),
            &mut table,
            seed,
        ),
    };
    let labels: Vec<Symbol> = graph.labels();
    if labels.is_empty() {
        return Err(CliError::run("graph has no labelled edges"));
    }
    let n = graph.n_vertices();

    // Pre-generate the whole stream so every mode replays the identical
    // batches: mostly inserts, with deletes of existing edges mixed in
    // when enabled. A host mirror tracks the evolving edge set so
    // deletes target edges that actually exist.
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut mirror = graph.clone();
    let stream_batches: Vec<UpdateBatch> = (0..batches)
        .map(|_| {
            let mut batch = UpdateBatch::new();
            for _ in 0..batch_size {
                let delete = deletes && next() % 4 == 0;
                if delete {
                    // Delete a random existing edge of a random label.
                    let l = labels[(next() % labels.len() as u64) as usize];
                    let edges = mirror.edges_of(l);
                    if !edges.is_empty() {
                        let (u, v) = edges[(next() % edges.len() as u64) as usize];
                        batch.delete(u, l, v);
                        continue;
                    }
                }
                let l = labels[(next() % labels.len() as u64) as usize];
                let (u, v) = ((next() % n as u64) as u32, (next() % n as u64) as u32);
                batch.insert(u, l, v);
            }
            batch.apply_to(&mut mirror);
            batch
        })
        .collect();

    // Durably log the stream so `spbla recover` can rebuild it.
    if let Some(dir) = args.opt("wal") {
        use spbla_durable::{DurabilityConfig, DurableLog};
        let dir = std::path::Path::new(dir);
        let mut wal_mirror = graph.clone();
        let mut log = DurableLog::open(dir, DurabilityConfig::default(), &graph, 0, &table)?;
        for (k, batch) in stream_batches.iter().enumerate() {
            batch.apply_to(&mut wal_mirror);
            log.append(k as u64 + 1, batch, &wal_mirror, &table)?;
        }
        writeln!(
            out,
            "  wal: {} batches durably logged to {}",
            stream_batches.len(),
            dir.display()
        )?;
    }

    // One grid per replayed mode so launch meters don't mix.
    let run_mode =
        |maintain: MaintainMode| -> Result<(Vec<u64>, u64, spbla_stream::MaintainStats), CliError> {
            let grid = DeviceGrid::new(devices);
            let mut stream = GraphStream::new(&grid, &graph)?;
            stream.track_closure(MaintainConfig {
                mode: maintain,
                ..MaintainConfig::default()
            })?;
            let base = grid.total_stats().launches;
            let mut checksums = Vec::with_capacity(stream_batches.len());
            for batch in &stream_batches {
                stream.apply(batch.clone())?;
                checksums.push(stream.closure_view().expect("tracked").checksum());
            }
            let launches = grid.total_stats().launches - base;
            let stats = stream.closure_view().expect("tracked").stats();
            Ok((checksums, launches, stats))
        };

    writeln!(
        out,
        "stream: {} vertices / {} edges, {batches} batches of {batch_size} ops on {devices} devices",
        n,
        graph.n_edges()
    )?;
    let incremental = (mode != "recompute")
        .then(|| run_mode(MaintainMode::Incremental))
        .transpose()?;
    let recompute = (mode != "incremental")
        .then(|| run_mode(MaintainMode::Recompute))
        .transpose()?;
    if let Some((_, launches, stats)) = &incremental {
        writeln!(
            out,
            "  incremental: {launches} launches ({} insert batches, {} DRed batches, \
             {} fallbacks, {} recomputes)",
            stats.incremental_inserts, stats.dred_deletes, stats.fallbacks, stats.recomputes
        )?;
    }
    if let Some((_, launches, stats)) = &recompute {
        writeln!(
            out,
            "  recompute:   {launches} launches ({} recomputes)",
            stats.recomputes
        )?;
    }
    if let (Some((a, la, _)), Some((b, lb, _))) = (&incremental, &recompute) {
        if a != b {
            return Err(CliError::run(
                "checksum mismatch: incremental maintenance diverged from recompute",
            ));
        }
        writeln!(
            out,
            "  checksums identical at every version; launch ratio {:.2}",
            *la as f64 / (*lb).max(1) as f64
        )?;
    }
    Ok(())
}

fn cmd_load(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use spbla_durable::{
        run_open_loop_mixed, saturation_sweep, write_query_templates, LoadConfig, TierStats,
    };
    use spbla_engine::{Engine, EngineConfig, Query};

    let devices: usize = opt_parse(args, "devices", 2)?;
    if devices == 0 {
        return Err(CliError::usage("--devices must be at least 1"));
    }
    let rate: f64 = opt_parse(args, "rate", 400.0)?;
    if rate <= 0.0 {
        return Err(CliError::usage("--rate must be positive"));
    }
    let requests: usize = opt_parse(args, "requests", 120)?;
    let seed: u64 = opt_parse(args, "seed", 1)?;
    let queue_capacity: usize = opt_parse(args, "queue", 16)?;
    let interactive_fraction: f64 = opt_parse(args, "interactive-fraction", 0.3)?;
    let deadline_ms: u64 = opt_parse(args, "deadline-ms", 250)?;
    let write_fraction: f64 = opt_parse(args, "write-fraction", 0.0)?;
    if !(0.0..=1.0).contains(&write_fraction) {
        return Err(CliError::usage("--write-fraction must be in [0, 1]"));
    }
    let sweep = opt_on_off(args, "sweep", false)?;

    let engine = Engine::new(
        spbla_multidev::DeviceGrid::new(devices),
        EngineConfig {
            queue_capacity,
            ..EngineConfig::default()
        },
    );
    let graph = match args.positional.first() {
        Some(path) => engine.with_symbols(|table| load_graph(path, table))?,
        None => engine.with_symbols(|table| {
            spbla_data::lubm::lubm_like(1, &spbla_data::lubm::LubmConfig::default(), table, seed)
        }),
    };
    let n_vertices = graph.n_vertices();
    let busiest = engine.with_symbols(|table| {
        let mut labels: Vec<(usize, String)> = graph
            .labels()
            .into_iter()
            .map(|s| (graph.label_count(s), table.name(s).to_string()))
            .collect();
        labels.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        labels
            .first()
            .map(|(_, n)| n.clone())
            .ok_or_else(|| CliError::run("graph has no labelled edges"))
    })?;
    engine.add_graph("g", graph);
    let queries: Vec<Query> = (0..8u64)
        .map(|i| Query::RpqFromSource {
            text: format!("{busiest}*"),
            source: ((i * 131) % u64::from(n_vertices.max(1))) as u32,
        })
        .collect();

    let writes = if write_fraction > 0.0 {
        let label = engine.with_symbols(|table| {
            table
                .get(&busiest)
                .ok_or_else(|| CliError::run("busiest label not interned"))
        })?;
        write_query_templates(label, n_vertices, 4, 8, seed)
    } else {
        Vec::new()
    };
    let config = LoadConfig {
        rate_per_sec: rate,
        requests,
        seed,
        interactive_fraction,
        interactive_deadline_ms: Some(deadline_ms),
        batch_deadline_ms: None,
        write_fraction,
    };
    let tier_line = |out: &mut dyn Write, name: &str, t: &TierStats| -> Result<(), CliError> {
        writeln!(
            out,
            "  {name:<12} offered {:>4}  admitted {:>4}  completed {:>4}  rejected {:>4}  \
             deadline {:>3}  p50 {:>7.2}ms  p95 {:>7.2}ms  p99 {:>7.2}ms",
            t.offered,
            t.admitted,
            t.completed,
            t.rejected,
            t.deadline_exceeded,
            t.p50_us as f64 / 1e3,
            t.p95_us as f64 / 1e3,
            t.p99_us as f64 / 1e3
        )?;
        Ok(())
    };
    if sweep {
        let rates: Vec<f64> = [0.5, 1.0, 2.0, 4.0, 8.0].iter().map(|m| m * rate).collect();
        let (points, saturation) =
            saturation_sweep(&engine, "g", &queries, &writes, &config, &rates);
        for p in &points {
            writeln!(
                out,
                "rate {:>8.0} req/s: achieved {:>7.1}, rejected {:>4}, saturated {}",
                p.rate,
                p.report.achieved_rate,
                p.report.rejected(),
                if p.report.saturated() { "yes" } else { "no" }
            )?;
            tier_line(out, "interactive", &p.report.interactive)?;
            tier_line(out, "batch", &p.report.batch)?;
            if p.report.writes.offered > 0 {
                tier_line(out, "writes", &p.report.writes)?;
            }
        }
        match saturation {
            Some(r) => writeln!(out, "saturation detected at {r:.0} req/s offered")?,
            None => writeln!(
                out,
                "no saturation up to {:.0} req/s",
                rates[rates.len() - 1]
            )?,
        }
    } else {
        let report = run_open_loop_mixed(&engine, "g", &queries, &writes, &config);
        writeln!(
            out,
            "open loop: {requests} arrivals at {rate:.0} req/s on {devices} devices \
             ({:.0} req/s achieved, wall {} ms, saturated {})",
            report.achieved_rate,
            report.wall_ms,
            if report.saturated() { "yes" } else { "no" }
        )?;
        tier_line(out, "interactive", &report.interactive)?;
        tier_line(out, "batch", &report.batch)?;
        if report.writes.offered > 0 {
            tier_line(out, "writes", &report.writes)?;
        }
    }
    engine.shutdown();
    Ok(())
}

fn cmd_recover(args: &Args, out: &mut dyn Write) -> Result<(), CliError> {
    use spbla_engine::{Engine, EngineConfig, Query, QueryResult};

    let Some(dir) = args.positional.first() else {
        return Err(CliError::usage("recover needs a durability directory"));
    };
    let devices: usize = opt_parse(args, "devices", 2)?;
    if devices == 0 {
        return Err(CliError::usage("--devices must be at least 1"));
    }
    let name = args.opt("graph").unwrap_or("g").to_string();

    let engine = Engine::new(
        spbla_multidev::DeviceGrid::new(devices),
        EngineConfig::default(),
    );
    let summary = spbla_durable::recover_into_engine(&engine, &name, std::path::Path::new(dir))?;
    writeln!(
        out,
        "recovered '{name}' from {dir}: checkpoint v{}, replayed {} wal records to v{}{}",
        summary.checkpoint_version,
        summary.replayed,
        summary.head_version,
        if summary.torn_tail {
            " (torn record at the log tail discarded)"
        } else {
            ""
        }
    )?;
    let host = engine.host_graph(&name)?;
    writeln!(
        out,
        "  graph: {} vertices, {} edges, {} labels",
        host.n_vertices(),
        host.n_edges(),
        host.labels().len()
    )?;
    // Serve one closure query from the recovered state: proof the
    // catalog is live, plus the bit-identity witness for scripting.
    let done = engine.submit(&name, Query::Closure)?.wait();
    match done.result {
        Ok(QueryResult::Pairs(pairs)) => writeln!(
            out,
            "  closure: {} reachable pairs, checksum {:016x}",
            pairs.len(),
            spbla_stream::checksum_pairs(&pairs)
        )?,
        Ok(other) => return Err(CliError::run(format!("unexpected result {other:?}"))),
        Err(e) => return Err(CliError::run(format!("recovered engine failed: {e}"))),
    }
    engine.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn temp_graph() -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("spbla_cli_test_{}.triples", std::process::id()));
        std::fs::write(&path, "# vertices 4\n0 a 1\n1 a 2\n2 b 3\n").unwrap();
        path
    }

    #[test]
    fn generate_then_stats_roundtrip() {
        let out_path =
            std::env::temp_dir().join(format!("spbla_cli_gen_{}.triples", std::process::id()));
        let msg = run_str(&[
            "generate",
            "enzyme",
            "--scale",
            "0.01",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(msg.contains("wrote"));
        let stats = run_str(&["stats", out_path.to_str().unwrap()]).unwrap();
        assert!(stats.contains("subClassOf"));
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn rpq_all_pairs_and_single_source() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        let all = run_str(&["rpq", p, "a . b?"]).unwrap();
        assert!(all.contains("pairs"), "{all}");
        let single = run_str(&["rpq", p, "a*", "--source", "0", "--backend", "cpu"]).unwrap();
        assert!(single.contains("reachable from 0"), "{single}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cfpq_builtin_grammars() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        // a^n b^n style grammar from a file.
        let gpath = std::env::temp_dir().join(format!("spbla_cli_g_{}.cfg", std::process::id()));
        std::fs::write(&gpath, "S -> a S b | a b\n").unwrap();
        for engine in ["tns", "mtx"] {
            let out = run_str(&["cfpq", p, gpath.to_str().unwrap(), "--engine", engine]).unwrap();
            assert!(out.contains("pairs"), "{out}");
        }
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_open_loop_reports_both_tiers() {
        let path =
            std::env::temp_dir().join(format!("spbla_cli_load_{}.triples", std::process::id()));
        std::fs::write(&path, "# vertices 4\n0 a 1\n1 a 2\n2 b 3\n").unwrap();
        let out = run_str(&[
            "load",
            path.to_str().unwrap(),
            "--rate",
            "2000",
            "--requests",
            "30",
            "--devices",
            "1",
            "--queue",
            "4",
            "--interactive-fraction",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("open loop"), "{out}");
        assert!(out.contains("interactive"), "{out}");
        assert!(out.contains("batch"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_wal_then_recover_round_trips() {
        let path =
            std::env::temp_dir().join(format!("spbla_cli_wal_{}.triples", std::process::id()));
        std::fs::write(&path, "# vertices 4\n0 a 1\n1 a 2\n2 b 3\n").unwrap();
        let dir = std::env::temp_dir().join(format!("spbla_cli_wal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let streamed = run_str(&[
            "stream",
            path.to_str().unwrap(),
            "--batches",
            "6",
            "--batch-size",
            "2",
            "--devices",
            "1",
            "--mode",
            "incremental",
            "--wal",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(streamed.contains("durably logged"), "{streamed}");
        let recovered = run_str(&["recover", dir.to_str().unwrap(), "--devices", "1"]).unwrap();
        assert!(
            recovered.contains("replayed 6 wal records to v6"),
            "{recovered}"
        );
        assert!(recovered.contains("checksum"), "{recovered}");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn closure_and_bfs() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        let c = run_str(&["closure", p]).unwrap();
        assert!(c.contains("closure: 3 -> 6 pairs"), "{c}");
        // Distributed run reports the same pair count plus grid counters.
        let d = run_str(&["closure", p, "--devices", "2"]).unwrap();
        assert!(d.contains("closure: 3 -> 6 pairs on 2 devices"), "{d}");
        assert!(d.contains("d2d"), "{d}");
        assert_eq!(
            run_str(&["closure", p, "--devices", "0"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run_str(&["closure", p, "--devices", "2", "--backend", "cpu"])
                .unwrap_err()
                .code,
            2
        );
        // Condensed closure answers identically (pair count) and
        // reports the SCC structure; it refuses the grid path.
        let cc = run_str(&["closure", p, "--condense", "on"]).unwrap();
        assert!(cc.contains("closure (condensed): 3 -> 6 pairs"), "{cc}");
        assert!(cc.contains("SCCs"), "{cc}");
        assert_eq!(
            run_str(&["closure", p, "--condense", "on", "--devices", "2"])
                .unwrap_err()
                .code,
            2
        );
        let b = run_str(&["bfs", p, "0"]).unwrap();
        assert!(b.contains("reached 4 vertices, eccentricity 3"), "{b}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn triangles_and_components() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        // temp graph: 0-a->1-a->2-b->3 (a chain): no triangles, one weak
        // component, four strong components.
        let tr = run_str(&["triangles", p]).unwrap();
        assert!(tr.contains("0 triangles"), "{tr}");
        let comp = run_str(&["components", p]).unwrap();
        assert!(
            comp.contains("1 weak components, 4 strong components"),
            "{comp}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_serves_closed_loop() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        let out = run_str(&[
            "engine",
            p,
            "--devices",
            "2",
            "--clients",
            "2",
            "--requests",
            "8",
        ])
        .unwrap();
        assert!(
            out.contains("served 8 requests from 2 clients on 2 devices"),
            "{out}"
        );
        assert!(out.contains("completed 8, errors 0"), "{out}");
        assert!(out.contains("plan cache"), "{out}");
        assert!(out.contains("queue depth high-water"), "{out}");
        // Ablation flags parse and still serve everything.
        let ablated = run_str(&[
            "engine",
            p,
            "--devices",
            "1",
            "--clients",
            "2",
            "--requests",
            "6",
            "--batching",
            "off",
            "--plan-cache",
            "off",
        ])
        .unwrap();
        assert!(ablated.contains("completed 6, errors 0"), "{ablated}");
        assert!(ablated.contains("batches 0"), "{ablated}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn engine_flags_are_validated() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        assert_eq!(
            run_str(&["engine", p, "--devices", "0"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run_str(&["engine", p, "--clients", "0"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run_str(&["engine", p, "--batching", "maybe"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["engine", "/nonexistent/file"]).unwrap_err().code,
            1
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_replays_and_cross_checks() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        let out = run_str(&[
            "stream",
            p,
            "--devices",
            "2",
            "--batches",
            "6",
            "--batch-size",
            "3",
        ])
        .unwrap();
        assert!(out.contains("6 batches of 3 ops on 2 devices"), "{out}");
        assert!(out.contains("incremental:"), "{out}");
        assert!(out.contains("recompute:"), "{out}");
        assert!(
            out.contains("checksums identical at every version"),
            "{out}"
        );
        // Single-mode runs skip the cross-check.
        let inc = run_str(&[
            "stream",
            p,
            "--batches",
            "3",
            "--mode",
            "incremental",
            "--deletes",
            "off",
        ])
        .unwrap();
        assert!(inc.contains("incremental:"), "{inc}");
        assert!(!inc.contains("recompute:"), "{inc}");
        // Flag validation.
        assert_eq!(
            run_str(&["stream", p, "--mode", "telepathy"])
                .unwrap_err()
                .code,
            2
        );
        assert_eq!(
            run_str(&["stream", p, "--devices", "0"]).unwrap_err().code,
            2
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_writes_chrome_json_and_cross_checks_launches() {
        let path = temp_graph();
        let p = path.to_str().unwrap();
        let trace_path =
            std::env::temp_dir().join(format!("spbla_cli_trace_{}.json", std::process::id()));
        let out = run_str(&["trace", p, "--out", trace_path.to_str().unwrap()]).unwrap();
        assert!(out.contains("kernel spans"), "{out}");
        let json = std::fs::read_to_string(&trace_path).unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"cat\":\"kernel\""), "{json}");
        // Flag validation: cpu backends have no launch counter.
        assert_eq!(
            run_str(&["trace", p, "--backend", "cpu"]).unwrap_err().code,
            2
        );
        assert_eq!(
            run_str(&["trace", p, "--capacity", "0"]).unwrap_err().code,
            2
        );
        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_are_usage_shaped() {
        assert_eq!(run_str(&[]).unwrap_err().code, 2);
        assert_eq!(run_str(&["frobnicate"]).unwrap_err().code, 2);
        assert_eq!(run_str(&["rpq"]).unwrap_err().code, 2);
        assert_eq!(
            run_str(&["rpq", "/nonexistent/file", "a"])
                .unwrap_err()
                .code,
            1
        );
        let path = temp_graph();
        assert_eq!(
            run_str(&["rpq", path.to_str().unwrap(), "a", "--backend", "gpu9000"])
                .unwrap_err()
                .code,
            2
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn help_prints_usage() {
        let h = run_str(&["help"]).unwrap();
        assert!(h.contains("usage: spbla"));
    }
}
