//! Edge-update batches and the append-only update log.
//!
//! A batch is the unit of admission: writers accumulate inserts and
//! deletes, then apply the whole batch atomically against a
//! [`crate::VersionedGraph`], producing exactly one new version. Batch
//! semantics are `G' = (G ∪ inserts) \ deletes` — when one batch both
//! inserts and deletes the same edge, the delete wins, matching the
//! "last writer in the batch" intuition without imposing an intra-batch
//! order.

use rustc_hash::{FxHashMap, FxHashSet};

use spbla_graph::LabeledGraph;
use spbla_lang::Symbol;

/// One edge mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert edge `(from, label, to)`; inserting a present edge is a
    /// no-op.
    Insert(u32, Symbol, u32),
    /// Delete edge `(from, label, to)`; deleting an absent edge is a
    /// no-op.
    Delete(u32, Symbol, u32),
}

/// One label's net batch effect: `(label, inserted edges, deleted
/// edges)`, both sorted and disjoint.
pub type LabelDelta = (Symbol, Vec<(u32, u32)>, Vec<(u32, u32)>);

/// A batch of edge inserts/deletes applied as one atomic version step.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// Queue an edge insert.
    pub fn insert(&mut self, from: u32, label: Symbol, to: u32) -> &mut Self {
        self.ops.push(UpdateOp::Insert(from, label, to));
        self
    }

    /// Queue an edge delete.
    pub fn delete(&mut self, from: u32, label: Symbol, to: u32) -> &mut Self {
        self.ops.push(UpdateOp::Delete(from, label, to));
        self
    }

    /// The queued operations, in submission order.
    pub fn ops(&self) -> &[UpdateOp] {
        &self.ops
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Largest vertex id referenced, if any — lets callers validate the
    /// batch against a fixed vertex universe before applying it.
    pub fn max_vertex(&self) -> Option<u32> {
        self.ops
            .iter()
            .map(|op| match *op {
                UpdateOp::Insert(u, _, v) | UpdateOp::Delete(u, _, v) => u.max(v),
            })
            .max()
    }

    /// Labels the batch touches, sorted by id. New labels (never seen by
    /// the store) are how the label vocabulary grows.
    pub fn labels(&self) -> Vec<Symbol> {
        let set: FxHashSet<Symbol> = self
            .ops
            .iter()
            .map(|op| match *op {
                UpdateOp::Insert(_, l, _) | UpdateOp::Delete(_, l, _) => l,
            })
            .collect();
        let mut out: Vec<Symbol> = set.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Net effect per label under the batch semantics
    /// `G' = (G ∪ inserts) \ deletes`: for every touched label the
    /// deduplicated insert set minus the delete set, and the
    /// deduplicated delete set. Both sets are sorted; they are disjoint.
    pub fn net_per_label(&self) -> Vec<LabelDelta> {
        let mut ins: FxHashMap<Symbol, FxHashSet<(u32, u32)>> = FxHashMap::default();
        let mut del: FxHashMap<Symbol, FxHashSet<(u32, u32)>> = FxHashMap::default();
        for op in &self.ops {
            match *op {
                UpdateOp::Insert(u, l, v) => {
                    ins.entry(l).or_default().insert((u, v));
                }
                UpdateOp::Delete(u, l, v) => {
                    del.entry(l).or_default().insert((u, v));
                }
            }
        }
        self.labels()
            .into_iter()
            .map(|l| {
                let d = del.remove(&l).unwrap_or_default();
                let mut i: Vec<(u32, u32)> = ins
                    .remove(&l)
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|e| !d.contains(e))
                    .collect();
                let mut d: Vec<(u32, u32)> = d.into_iter().collect();
                i.sort_unstable();
                d.sort_unstable();
                (l, i, d)
            })
            .collect()
    }

    /// Apply the batch to a host-resident [`LabeledGraph`] in place
    /// (the engine catalog's host side of the same version step).
    pub fn apply_to(&self, graph: &mut LabeledGraph) {
        for (label, inserts, deletes) in self.net_per_label() {
            for &(u, v) in &inserts {
                if !graph.edges_of(label).contains(&(u, v)) {
                    graph.add_edge(u, label, v);
                }
            }
            if !deletes.is_empty() {
                graph.remove_edges(label, |e| deletes.binary_search(&e).is_ok());
            }
        }
    }
}

/// Append-only record of applied batches: `entries[k]` produced version
/// `base_version + k + 1`. Replaying the log over the base snapshot
/// reconstructs every version — the recovery story and the replay
/// workload driver share this type.
#[derive(Debug, Default)]
pub struct UpdateLog {
    base_version: u64,
    entries: Vec<UpdateBatch>,
}

impl UpdateLog {
    /// An empty log whose replays start from `base_version`.
    pub fn new(base_version: u64) -> UpdateLog {
        UpdateLog {
            base_version,
            entries: Vec::new(),
        }
    }

    /// Version the log's replay starts from.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Version after replaying the whole log.
    pub fn head_version(&self) -> u64 {
        self.base_version + self.entries.len() as u64
    }

    /// Record a batch that produced `head_version() + 1`.
    pub fn record(&mut self, batch: UpdateBatch) {
        self.entries.push(batch);
    }

    /// Number of recorded batches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no batch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The batches that advance the graph past `version`, i.e. those a
    /// replica at `version` still has to replay.
    pub fn since(&self, version: u64) -> &[UpdateBatch] {
        let skip = version.saturating_sub(self.base_version) as usize;
        &self.entries[skip.min(self.entries.len())..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::SymbolTable;

    #[test]
    fn net_semantics_delete_wins_within_batch() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let mut batch = UpdateBatch::new();
        batch
            .insert(0, a, 1)
            .insert(0, a, 1) // duplicate collapses
            .delete(0, a, 1) // delete wins over the insert above
            .insert(2, a, 3)
            .delete(4, b, 5);
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.labels(), vec![a, b]);
        assert_eq!(batch.max_vertex(), Some(5));
        let net = batch.net_per_label();
        assert_eq!(net.len(), 2);
        assert_eq!(net[0], (a, vec![(2, 3)], vec![(0, 1)]));
        assert_eq!(net[1], (b, vec![], vec![(4, 5)]));
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let batch = UpdateBatch::new();
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.max_vertex(), None);
        assert!(batch.labels().is_empty());
        assert!(batch.net_per_label().is_empty());
        let mut g = LabeledGraph::from_triples(4, [(0, a, 1), (1, a, 2)]);
        let before = g.edges_of(a).to_vec();
        batch.apply_to(&mut g);
        assert_eq!(g.edges_of(a), &before[..]);
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn delete_wins_regardless_of_op_order() {
        // Batch semantics are the *sets* `(G ∪ ins) \ del`, not an op
        // sequence: a delete beats an insert of the same edge even when
        // the insert is recorded later, and duplicate deletes collapse.
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let mut batch = UpdateBatch::new();
        batch
            .delete(0, a, 1)
            .insert(0, a, 1)
            .delete(2, a, 3)
            .delete(2, a, 3);
        let net = batch.net_per_label();
        assert_eq!(net, vec![(a, vec![], vec![(0, 1), (2, 3)])]);
        // Applied to a graph that holds one of the edges: both end
        // absent, whether pre-existing or batch-inserted.
        let mut g = LabeledGraph::from_triples(4, [(0, a, 1)]);
        batch.apply_to(&mut g);
        assert!(g.edges_of(a).is_empty());
        // Applied to a graph with neither edge: still a no-op.
        let mut empty = LabeledGraph::new(4);
        batch.apply_to(&mut empty);
        assert_eq!(empty.n_edges(), 0);
    }

    #[test]
    fn apply_to_host_graph_round_trips() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let mut g = LabeledGraph::from_triples(4, [(0, a, 1), (1, a, 2)]);
        let mut batch = UpdateBatch::new();
        batch.insert(2, a, 3).delete(0, a, 1).insert(1, a, 2);
        batch.apply_to(&mut g);
        let mut edges = g.edges_of(a).to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(1, 2), (2, 3)]);
    }

    #[test]
    fn log_since_replays_the_suffix() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let mut log = UpdateLog::new(1);
        for k in 0..3 {
            let mut b = UpdateBatch::new();
            b.insert(k, a, k + 1);
            log.record(b);
        }
        assert_eq!(log.head_version(), 4);
        assert_eq!(log.since(1).len(), 3);
        assert_eq!(log.since(3).len(), 1);
        assert_eq!(log.since(9).len(), 0);
    }
}
