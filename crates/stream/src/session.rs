//! A replay session: one versioned store, its update log, and the
//! incremental views riding the stream.

use rustc_hash::FxHashMap;

use spbla_core::Result;
use spbla_graph::LabeledGraph;
use spbla_lang::Nfa;
use spbla_multidev::DeviceGrid;

use crate::{
    AppliedBatch, ClosureView, MaintainConfig, MaintainMode, RpqView, SccView, UpdateBatch,
    UpdateLog, VersionedGraph,
};

/// The stream façade: applies each batch to the store, fans the delta
/// out to every registered view, and records the batch in the log so
/// the whole history stays replayable.
#[derive(Debug)]
pub struct GraphStream {
    store: VersionedGraph,
    log: UpdateLog,
    closure: Option<ClosureView>,
    scc: Option<SccView>,
    rpq_views: FxHashMap<String, RpqView>,
}

impl GraphStream {
    /// Open a stream over `graph` loaded onto `grid` as version 0.
    pub fn new(grid: &DeviceGrid, graph: &LabeledGraph) -> Result<GraphStream> {
        let store = VersionedGraph::new(grid, graph)?;
        Ok(GraphStream {
            log: UpdateLog::new(store.version()),
            store,
            closure: None,
            scc: None,
            rpq_views: FxHashMap::default(),
        })
    }

    /// The underlying versioned store.
    pub fn store(&self) -> &VersionedGraph {
        &self.store
    }

    /// The append-only log of applied batches.
    pub fn log(&self) -> &UpdateLog {
        &self.log
    }

    /// Latest version.
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// Register a label-union reachability (reflexive closure) view,
    /// built at the current version.
    pub fn track_closure(&mut self, config: MaintainConfig) -> Result<()> {
        let snap = self.store.pin();
        let pairs = snap.adjacency_pairs();
        self.closure = Some(ClosureView::new(
            self.store.grid(),
            snap.n_vertices(),
            &pairs,
            config,
        )?);
        Ok(())
    }

    /// Register an SCC condensation view, built at the current version
    /// and maintained per batch (the planner's condensed-closure
    /// preprocessing reads it instead of re-running Tarjan).
    pub fn track_scc(&mut self, mode: MaintainMode) {
        let snap = self.store.pin();
        let pairs = snap.adjacency_pairs();
        self.scc = Some(SccView::new(snap.n_vertices(), &pairs, mode));
    }

    /// Register a named RPQ view, built at the current version.
    pub fn track_rpq(&mut self, name: &str, nfa: &Nfa, config: MaintainConfig) -> Result<()> {
        let view = RpqView::new(self.store.grid(), nfa, &self.store.pin(), config)?;
        self.rpq_views.insert(name.to_string(), view);
        Ok(())
    }

    /// The tracked closure view, if registered.
    pub fn closure_view(&self) -> Option<&ClosureView> {
        self.closure.as_ref()
    }

    /// The tracked SCC condensation view, if registered.
    pub fn scc_view(&self) -> Option<&SccView> {
        self.scc.as_ref()
    }

    /// A tracked RPQ view by name.
    pub fn rpq_view(&self, name: &str) -> Option<&RpqView> {
        self.rpq_views.get(name)
    }

    /// Apply one batch: store first, then every view, then the log.
    /// No-op batches touch nothing and do not advance the version.
    pub fn apply(&mut self, batch: UpdateBatch) -> Result<AppliedBatch> {
        let mut span = spbla_obs::trace_global().span("stream:apply", "op", 0);
        if let Some(span) = span.as_mut() {
            span.arg("ops", batch.len() as u64);
        }
        let prev = self.store.pin();
        let applied = self.store.apply(&batch)?;
        if applied.is_noop() {
            return Ok(applied);
        }
        if let Some(span) = span.as_mut() {
            span.arg("version", applied.version);
        }
        if let Some(view) = &mut self.closure {
            if !applied.adj_inserted.is_empty() || !applied.adj_deleted.is_empty() {
                let _inner = spbla_obs::trace_global().span("stream:closure_view", "op", 0);
                view.apply(&applied.adj_inserted, &applied.adj_deleted)?;
            }
        }
        if let Some(view) = &mut self.scc {
            if !applied.adj_inserted.is_empty() || !applied.adj_deleted.is_empty() {
                let _inner = spbla_obs::trace_global().span("stream:scc_view", "op", 0);
                view.apply(&applied.adj_inserted, &applied.adj_deleted);
            }
        }
        for view in self.rpq_views.values_mut() {
            let _inner = spbla_obs::trace_global().span("stream:rpq_view", "op", 0);
            view.apply(&prev, &applied)?;
        }
        self.log.record(batch);
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::glushkov::glushkov;
    use spbla_lang::{Regex, SymbolTable};

    #[test]
    fn stream_keeps_views_and_log_in_lockstep() {
        let grid = DeviceGrid::new(2);
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(5, [(0, a, 1), (1, a, 2)]);
        let regex = Regex::parse("a+", &mut t).unwrap();

        let mut stream = GraphStream::new(&grid, &g).unwrap();
        stream.track_closure(MaintainConfig::default()).unwrap();
        stream.track_scc(crate::MaintainMode::Incremental);
        stream
            .track_rpq("a-plus", &glushkov(&regex), MaintainConfig::default())
            .unwrap();

        let mut batch = UpdateBatch::new();
        batch.insert(2, a, 3);
        let applied = stream.apply(batch).unwrap();
        assert_eq!(applied.version, 1);
        assert_eq!(stream.version(), 1);
        assert_eq!(stream.log().len(), 1);
        assert_eq!(stream.log().head_version(), 1);

        // Both views saw the delta.
        assert!(stream.closure_view().unwrap().pairs().contains(&(0, 3)));
        assert!(stream.rpq_view("a-plus").unwrap().pairs().contains(&(0, 3)));

        // The SCC view tracks the same stream.
        assert_eq!(stream.scc_view().unwrap().stats().batches, 1);

        // A no-op batch leaves everything untouched.
        let mut noop = UpdateBatch::new();
        noop.insert(2, a, 3).delete(4, a, 0);
        let applied = stream.apply(noop).unwrap();
        assert!(applied.is_noop());
        assert_eq!(stream.version(), 1);
        assert_eq!(stream.log().len(), 1);
    }
}
