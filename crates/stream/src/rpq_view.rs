//! Incrementally maintained RPQ answer sets.
//!
//! An [`RpqView`] fixes one regular query (as an ε-free NFA) and keeps
//! the reflexive closure of the intersection machine
//! `M = Σ_s A_s ⊗ G_s` maintained under graph updates, delegating the
//! closure repair to [`ClosureView`] on the `k·n`-sized product space.
//!
//! Update translation is per label and exact: a graph edge `(u, ℓ, v)`
//! materialises the `M`-edge `(q·n+u, q'·n+v)` for every automaton
//! transition `(q, ℓ, q')`. Because several labels can share a
//! transition endpoint pair `(q, q')`, an `M`-edge may be multiply
//! derived — the view consults the *snapshots* (host-side, zero
//! launches) so an `M`-edge is inserted only when it was underivable
//! before, and deleted only when no label still derives it.
//!
//! Answers come from the reflexive product closure directly: pair
//! `(v, u)` is an answer iff some `(q₀·n+v, q_f·n+u)` is in the
//! closure. The reflexive diagonal lands only in `(q, q)` blocks, and a
//! start-equals-final block exists exactly when the NFA accepts ε — so
//! the ε special-casing of `RpqIndex::reachable_pairs` is subsumed by
//! the diagonal.

use rustc_hash::{FxHashMap, FxHashSet};

use spbla_core::{Pair, Result, SpblaError};
use spbla_lang::{Nfa, Symbol};
use spbla_multidev::DeviceGrid;

use crate::{AppliedBatch, ClosureView, GraphSnapshot, MaintainConfig, MaintainStats};

/// An incrementally maintained answer set for one RPQ over a
/// [`crate::VersionedGraph`]'s update stream.
#[derive(Debug)]
pub struct RpqView {
    k: u32,
    n: u32,
    starts: Vec<u32>,
    finals: Vec<u32>,
    /// Per symbol: the automaton transitions carrying it.
    transitions: FxHashMap<Symbol, Vec<(u32, u32)>>,
    /// Per transition endpoint pair `(q, q')`: every symbol with such a
    /// transition — the derivation alternatives of one `M`-edge family.
    pair_symbols: FxHashMap<(u32, u32), Vec<Symbol>>,
    view: ClosureView,
}

impl RpqView {
    /// Build the view for `nfa` over the graph version in `snapshot`.
    pub fn new(
        grid: &DeviceGrid,
        nfa: &Nfa,
        snapshot: &GraphSnapshot,
        config: MaintainConfig,
    ) -> Result<RpqView> {
        let k = nfa.n_states();
        let n = snapshot.n_vertices();
        let side = u64::from(k) * u64::from(n);
        if k == 0 || n == 0 || side > u64::from(u32::MAX) {
            return Err(SpblaError::InvalidDimension(format!(
                "product machine side {k}·{n} out of range"
            )));
        }

        let transitions = nfa.transitions_by_symbol();
        let mut pair_symbols: FxHashMap<(u32, u32), Vec<Symbol>> = FxHashMap::default();
        for (&sym, edges) in &transitions {
            for &qq in edges {
                pair_symbols.entry(qq).or_default().push(sym);
            }
        }

        // M-pairs of the base version.
        let mut m_pairs: FxHashSet<Pair> = FxHashSet::default();
        for (&sym, edges) in &transitions {
            if let Some(csr) = snapshot.label_host(sym) {
                for (u, v) in csr.iter() {
                    for &(q, q2) in edges {
                        m_pairs.insert((q * n + u, q2 * n + v));
                    }
                }
            }
        }
        let mut m_pairs: Vec<Pair> = m_pairs.into_iter().collect();
        m_pairs.sort_unstable();

        Ok(RpqView {
            k,
            n,
            starts: nfa.start_states().to_vec(),
            finals: nfa.final_states().to_vec(),
            transitions,
            pair_symbols,
            view: ClosureView::new(grid, side as u32, &m_pairs, config)?,
        })
    }

    /// Automaton state count (the Kronecker factor size).
    pub fn automaton_states(&self) -> u32 {
        self.k
    }

    /// Maintenance counters of the underlying closure view.
    pub fn stats(&self) -> MaintainStats {
        self.view.stats()
    }

    /// Absorb one applied batch. `prev` must be the snapshot the batch
    /// was applied *to* (version `applied.version - 1`); the post-state
    /// is read from `applied.snapshot`.
    pub fn apply(&mut self, prev: &GraphSnapshot, applied: &AppliedBatch) -> Result<()> {
        let next = &applied.snapshot;
        let n = self.n;
        let mut m_ins: FxHashSet<Pair> = FxHashSet::default();
        let mut m_del: FxHashSet<Pair> = FxHashSet::default();

        for (label, real_ins, real_del) in &applied.label_deltas {
            let Some(edges) = self.transitions.get(label) else {
                continue; // label not in the query: M unaffected
            };
            for &(q, q2) in edges {
                let alternatives = &self.pair_symbols[&(q, q2)];
                for &(u, v) in real_ins {
                    // New M-edge only if NO label derived it before.
                    let derived_before = alternatives.iter().any(|&sym| prev.has_edge(u, sym, v));
                    if !derived_before {
                        m_ins.insert((q * n + u, q2 * n + v));
                    }
                }
                for &(u, v) in real_del {
                    // M-edge gone only if NO label still derives it.
                    let derived_after = alternatives.iter().any(|&sym| next.has_edge(u, sym, v));
                    if !derived_after {
                        m_del.insert((q * n + u, q2 * n + v));
                    }
                }
            }
        }

        if m_ins.is_empty() && m_del.is_empty() {
            return Ok(());
        }
        let mut ins: Vec<Pair> = m_ins.into_iter().collect();
        let mut del: Vec<Pair> = m_del.into_iter().collect();
        ins.sort_unstable();
        del.sort_unstable();
        self.view.apply(&ins, &del)
    }

    /// All reachable pairs `(v, u)` of the query at the maintained
    /// version, sorted — semantics identical to
    /// `RpqIndex::reachable_pairs`.
    pub fn pairs(&self) -> Vec<Pair> {
        let n = self.n;
        let closure = self.view.closure().gather();
        let mut out: Vec<Pair> = Vec::new();
        for &q0 in &self.starts {
            for &qf in &self.finals {
                let (lo, hi) = (q0 * n, q0 * n + n);
                for row in lo..hi {
                    for &col in closure.row(row) {
                        if col >= qf * n && col < qf * n + n {
                            out.push((row - lo, col - qf * n));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// FNV-1a checksum of the sorted answer pairs.
    pub fn checksum(&self) -> u64 {
        crate::checksum_pairs(&self.pairs())
    }

    /// Vertices reachable from `source` under the query, at the
    /// maintained version — semantics identical to re-running the
    /// single-source query from scratch.
    ///
    /// This is the streaming re-evaluation path: the insert/delete
    /// frontier seeded from the changed edges already repaired the
    /// product closure in [`RpqView::apply`], so answering is a
    /// host-side row extraction over the maintained closure — zero
    /// kernel launches, versus the full fixpoint a fresh re-query pays.
    pub fn reachable_from(&self, source: u32) -> Vec<u32> {
        let n = self.n;
        if source >= n {
            return Vec::new();
        }
        let closure = self.view.closure().gather();
        let mut out: Vec<u32> = Vec::new();
        for &q0 in &self.starts {
            let row = q0 * n + source;
            for &col in closure.row(row) {
                for &qf in &self.finals {
                    if col >= qf * n && col < qf * n + n {
                        out.push(col - qf * n);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{UpdateBatch, VersionedGraph};
    use spbla_core::Instance;
    use spbla_graph::{LabeledGraph, RpqIndex, RpqOptions};
    use spbla_lang::glushkov::glushkov;
    use spbla_lang::{Regex, SymbolTable};

    fn grid(n: usize) -> DeviceGrid {
        DeviceGrid::new(n)
    }

    /// Oracle: rebuild an RpqIndex from scratch at the current version.
    fn oracle(graph: &LabeledGraph, nfa: &spbla_lang::Nfa) -> Vec<Pair> {
        RpqIndex::build_from_nfa(graph, nfa, &Instance::cuda_sim(), &RpqOptions::default())
            .unwrap()
            .reachable_pairs()
            .unwrap()
    }

    #[test]
    fn maintained_answers_track_rebuilds() {
        for devices in [1, 2] {
            let grid = grid(devices);
            let mut t = SymbolTable::new();
            let a = t.intern("a");
            let b = t.intern("b");
            let g = LabeledGraph::from_triples(4, [(0, a, 1), (1, b, 2), (1, a, 3)]);
            let regex = Regex::parse("a . b*", &mut t).unwrap();
            let nfa = glushkov(&regex);

            let store = VersionedGraph::new(&grid, &g).unwrap();
            let cfg = MaintainConfig {
                fallback_fraction: 10.0,
                ..MaintainConfig::default()
            };
            let mut view = RpqView::new(&grid, &nfa, &store.pin(), cfg).unwrap();
            assert_eq!(view.pairs(), oracle(&g, &nfa));

            let steps: Vec<UpdateBatch> = {
                let mut s = Vec::new();
                let mut b1 = UpdateBatch::new();
                b1.insert(2, b, 3).insert(3, a, 0);
                s.push(b1);
                let mut b2 = UpdateBatch::new();
                b2.delete(1, b, 2).insert(2, a, 1);
                s.push(b2);
                let mut b3 = UpdateBatch::new();
                b3.delete(0, a, 1);
                s.push(b3);
                s
            };
            for batch in steps {
                let prev = store.pin();
                let applied = store.apply(&batch).unwrap();
                view.apply(&prev, &applied).unwrap();
                let truth = oracle(&applied.snapshot.to_labeled_graph(), &nfa);
                assert_eq!(view.pairs(), truth, "devices={devices}");
            }
            assert!(view.stats().recomputes == 0, "incremental paths only");
        }
    }

    #[test]
    fn epsilon_acceptance_comes_from_the_diagonal() {
        let grid = grid(1);
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(3, [(0, a, 1)]);
        let regex = Regex::parse("a*", &mut t).unwrap();
        let nfa = glushkov(&regex);
        assert!(nfa.accepts_epsilon());

        let store = VersionedGraph::new(&grid, &g).unwrap();
        let view = RpqView::new(&grid, &nfa, &store.pin(), MaintainConfig::default()).unwrap();
        let pairs = view.pairs();
        for v in 0..3 {
            assert!(pairs.contains(&(v, v)), "missing ε pair ({v},{v})");
        }
        assert_eq!(pairs, oracle(&g, &nfa));
    }

    #[test]
    fn shared_transition_pairs_disambiguate_deletes() {
        let grid = grid(1);
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        // Query (a | b): one transition endpoint pair carries two labels.
        let regex = Regex::parse("a | b", &mut t).unwrap();
        let nfa = glushkov(&regex);
        // Edge (0,1) under both labels.
        let g = LabeledGraph::from_triples(3, [(0, a, 1), (0, b, 1)]);
        let store = VersionedGraph::new(&grid, &g).unwrap();
        let cfg = MaintainConfig {
            fallback_fraction: 10.0,
            ..MaintainConfig::default()
        };
        let mut view = RpqView::new(&grid, &nfa, &store.pin(), cfg).unwrap();
        assert!(view.pairs().contains(&(0, 1)));

        // Deleting the `a` copy must NOT drop the answer: `b` derives it.
        let prev = store.pin();
        let mut batch = UpdateBatch::new();
        batch.delete(0, a, 1);
        let applied = store.apply(&batch).unwrap();
        view.apply(&prev, &applied).unwrap();
        assert!(view.pairs().contains(&(0, 1)));

        // Deleting the `b` copy too drops it.
        let prev = store.pin();
        let mut batch = UpdateBatch::new();
        batch.delete(0, b, 1);
        let applied = store.apply(&batch).unwrap();
        view.apply(&prev, &applied).unwrap();
        assert!(!view.pairs().contains(&(0, 1)));
        assert_eq!(
            view.pairs(),
            oracle(&applied.snapshot.to_labeled_graph(), &nfa)
        );
    }

    #[test]
    fn reachable_from_agrees_with_pairs() {
        let grid = grid(2);
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let g = LabeledGraph::from_triples(5, [(0, a, 1), (1, b, 2), (2, b, 3), (1, a, 4)]);
        let regex = Regex::parse("a . b*", &mut t).unwrap();
        let nfa = glushkov(&regex);
        let store = VersionedGraph::new(&grid, &g).unwrap();
        let mut view = RpqView::new(&grid, &nfa, &store.pin(), MaintainConfig::default()).unwrap();
        let prev = store.pin();
        let mut batch = UpdateBatch::new();
        batch.insert(3, b, 0).delete(1, a, 4);
        let applied = store.apply(&batch).unwrap();
        view.apply(&prev, &applied).unwrap();
        let pairs = view.pairs();
        for source in 0..6 {
            let want: Vec<u32> = pairs
                .iter()
                .filter(|&&(u, _)| u == source)
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(view.reachable_from(source), want, "source {source}");
        }
    }

    #[test]
    fn oversized_product_is_rejected() {
        let grid = grid(1);
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(3, [(0, a, 1)]);
        let store = VersionedGraph::new(&grid, &g).unwrap();
        let nfa = Nfa::new(u32::MAX / 2, vec![0], vec![1], vec![(0, a, 1)]);
        assert!(matches!(
            RpqView::new(&grid, &nfa, &store.pin(), MaintainConfig::default()),
            Err(SpblaError::InvalidDimension(_))
        ));
    }
}
