//! Streaming graph updates over the SPbLA device grid.
//!
//! This crate makes the library's static pipelines — reachability
//! closures and Kronecker-product RPQ indices over device-resident
//! Boolean matrices — *dynamic*:
//!
//! * [`UpdateBatch`] / [`UpdateLog`]: edge insert/delete batches with
//!   `(G ∪ inserts) \ deletes` semantics and a replayable history;
//! * [`VersionedGraph`] / [`GraphSnapshot`]: a copy-on-write snapshot
//!   store — readers pin a consistent version while a writer applies
//!   batches, label matrices are rebuilt shard-locally and shared
//!   across versions when untouched, and unpinned history is pruned;
//! * [`ClosureView`] / [`RpqView`]: incrementally maintained answers.
//!   Insertions seed a semi-naïve restart from the new-edge frontier,
//!   deletions run a DRed-style over-delete-then-rederive pass, and
//!   both fall back to a full recompute when the touched frontier
//!   outgrows a threshold ([`MaintainConfig`]);
//! * [`SccView`]: an incrementally maintained SCC condensation for the
//!   planner's condensed-closure preprocessing — inserts merge
//!   components via a component-graph Tarjan, intra-component deletes
//!   fall back to a full recompute;
//! * [`GraphStream`]: the session façade wiring store, log, and views
//!   together.

mod batch;
mod closure_view;
mod rpq_view;
mod scc_view;
mod session;
mod store;

pub use batch::{UpdateBatch, UpdateLog, UpdateOp};
pub use closure_view::{ClosureView, MaintainConfig, MaintainMode, MaintainStats};
pub use rpq_view::RpqView;
pub use scc_view::{SccStats, SccView};
pub use session::GraphStream;
pub use store::{AppliedBatch, GraphSnapshot, VersionedGraph};

/// FNV-1a over a pair list: the order-sensitive 64-bit checksum used
/// everywhere two result sets must be certified bit-identical (sort
/// before hashing — every producer in this crate already does).
pub fn checksum_pairs(pairs: &[spbla_core::Pair]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |word: u32| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for &(r, c) in pairs {
        eat(r);
        eat(c);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_and_content_sensitive() {
        let a = checksum_pairs(&[(0, 1), (1, 2)]);
        let b = checksum_pairs(&[(1, 2), (0, 1)]);
        let c = checksum_pairs(&[(0, 1), (1, 2)]);
        let d = checksum_pairs(&[(0, 1), (1, 3)]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_ne!(a, d);
        assert_ne!(checksum_pairs(&[]), 0);
    }
}
