//! Copy-on-write versioned graph store.
//!
//! A [`VersionedGraph`] holds a history of immutable [`GraphSnapshot`]s.
//! Every applied [`UpdateBatch`] produces one new snapshot that shares
//! (via `Arc`) the per-label host CSRs and device-resident
//! [`DistMatrix`] shards of every label the batch did not touch —
//! copy-on-write at label granularity. Readers pin a snapshot and see a
//! consistent version for as long as they hold it; the store prunes a
//! historical snapshot only once nobody pins it.

use std::sync::{Arc, Mutex};

use rustc_hash::{FxHashMap, FxHashSet};

use spbla_core::{CsrBool, Pair, Result, SpblaError};
use spbla_graph::LabeledGraph;
use spbla_lang::Symbol;
use spbla_multidev::{DeviceGrid, DistMatrix};

use crate::UpdateBatch;

/// One immutable version of the graph: per-label host CSR plus the
/// device-resident sharded matrix, both shared with neighbouring
/// versions for untouched labels.
#[derive(Debug)]
pub struct GraphSnapshot {
    version: u64,
    n: u32,
    labels_host: FxHashMap<Symbol, Arc<CsrBool>>,
    labels_dev: FxHashMap<Symbol, Arc<DistMatrix>>,
}

impl GraphSnapshot {
    /// Version number (0 for the initial load).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of vertices (fixed across versions).
    pub fn n_vertices(&self) -> u32 {
        self.n
    }

    /// Labels present in this version, sorted by id.
    pub fn labels(&self) -> Vec<Symbol> {
        let mut out: Vec<Symbol> = self.labels_host.keys().copied().collect();
        out.sort_unstable();
        out
    }

    /// Host adjacency of one label, if present.
    pub fn label_host(&self, label: Symbol) -> Option<&Arc<CsrBool>> {
        self.labels_host.get(&label)
    }

    /// Device-resident adjacency of one label, if present.
    pub fn label_dev(&self, label: Symbol) -> Option<&Arc<DistMatrix>> {
        self.labels_dev.get(&label)
    }

    /// Total edges across all labels.
    pub fn n_edges(&self) -> usize {
        self.labels_host.values().map(|c| c.nnz()).sum()
    }

    /// Whether edge `(u, v)` carries `label` in this version.
    pub fn has_edge(&self, u: u32, label: Symbol, v: u32) -> bool {
        self.labels_host.get(&label).is_some_and(|c| c.get(u, v))
    }

    /// The label-union adjacency `⋃_ℓ A_ℓ` as host pairs, sorted.
    pub fn adjacency_pairs(&self) -> Vec<Pair> {
        let set: FxHashSet<Pair> = self.labels_host.values().flat_map(|c| c.iter()).collect();
        let mut out: Vec<Pair> = set.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Materialise this version as a host [`LabeledGraph`] — the oracle
    /// input for full-recompute comparisons.
    pub fn to_labeled_graph(&self) -> LabeledGraph {
        let mut g = LabeledGraph::new(self.n);
        for (&label, csr) in &self.labels_host {
            for (u, v) in csr.iter() {
                g.add_edge(u, label, v);
            }
        }
        g
    }

    fn adjacency_has(&self, e: Pair) -> bool {
        self.labels_host.values().any(|c| c.get(e.0, e.1))
    }
}

/// Effect summary of one applied batch, phrased in the deltas the
/// incremental views need.
#[derive(Debug)]
pub struct AppliedBatch {
    /// Version produced by the batch.
    pub version: u64,
    /// Per touched label: edges actually added / actually removed
    /// (no-op operations are filtered out), both sorted.
    pub label_deltas: Vec<(Symbol, Vec<Pair>, Vec<Pair>)>,
    /// Edges new in the label-union adjacency (no label had them
    /// before, some label has them now), sorted.
    pub adj_inserted: Vec<Pair>,
    /// Edges gone from the label-union adjacency (some label had them,
    /// none retains them), sorted.
    pub adj_deleted: Vec<Pair>,
    /// The snapshot the batch produced.
    pub snapshot: Arc<GraphSnapshot>,
}

impl AppliedBatch {
    /// Whether the batch changed nothing anywhere.
    pub fn is_noop(&self) -> bool {
        self.label_deltas.is_empty()
    }
}

/// The versioned store: a device grid plus a pin-aware snapshot
/// history. One writer applies batches (serialised by the internal
/// lock); any number of readers pin versions concurrently.
#[derive(Debug)]
pub struct VersionedGraph {
    grid: DeviceGrid,
    n: u32,
    history: Mutex<Vec<Arc<GraphSnapshot>>>,
}

impl VersionedGraph {
    /// Load `graph` onto `grid` as version 0.
    pub fn new(grid: &DeviceGrid, graph: &LabeledGraph) -> Result<VersionedGraph> {
        Self::new_at_version(grid, graph, 0)
    }

    /// Load `graph` onto `grid` with its history starting at `version`
    /// — the rejoin/recovery path, where a rebuilt store must resume
    /// the version numbering of the state it was copied from rather
    /// than restart at zero.
    pub fn new_at_version(
        grid: &DeviceGrid,
        graph: &LabeledGraph,
        version: u64,
    ) -> Result<VersionedGraph> {
        let n = graph.n_vertices();
        let mut labels_host = FxHashMap::default();
        let mut labels_dev = FxHashMap::default();
        for label in graph.labels() {
            let csr = graph.label_csr(label);
            let dev = DistMatrix::from_csr(grid, &csr)?;
            labels_host.insert(label, Arc::new(csr));
            labels_dev.insert(label, Arc::new(dev));
        }
        let base = GraphSnapshot {
            version,
            n,
            labels_host,
            labels_dev,
        };
        Ok(VersionedGraph {
            grid: grid.clone(),
            n,
            history: Mutex::new(vec![Arc::new(base)]),
        })
    }

    /// The device grid the store shards over.
    pub fn grid(&self) -> &DeviceGrid {
        &self.grid
    }

    /// Number of vertices (fixed for the store's lifetime).
    pub fn n_vertices(&self) -> u32 {
        self.n
    }

    /// Latest version number.
    pub fn version(&self) -> u64 {
        self.history.lock().unwrap().last().unwrap().version()
    }

    /// Pin the latest snapshot: the returned `Arc` keeps that version
    /// alive (exempt from pruning) until dropped.
    pub fn pin(&self) -> Arc<GraphSnapshot> {
        self.history.lock().unwrap().last().unwrap().clone()
    }

    /// Pin a specific historical version, if it is still retained.
    pub fn pin_version(&self, version: u64) -> Option<Arc<GraphSnapshot>> {
        self.history
            .lock()
            .unwrap()
            .iter()
            .find(|s| s.version() == version)
            .cloned()
    }

    /// Number of snapshots currently retained.
    pub fn history_len(&self) -> usize {
        self.history.lock().unwrap().len()
    }

    /// Apply one batch atomically, producing the next version. The
    /// per-label device matrices of touched labels are rebuilt
    /// shard-locally ([`DistMatrix::apply_updates`]); untouched labels
    /// are shared with the previous snapshot. Historical snapshots
    /// nobody pins are pruned on the way out.
    pub fn apply(&self, batch: &UpdateBatch) -> Result<AppliedBatch> {
        if let Some(max) = batch.max_vertex() {
            if max >= self.n {
                // Surface the first offending endpoint for the error.
                let (row, col) = batch
                    .ops()
                    .iter()
                    .map(|op| match *op {
                        crate::UpdateOp::Insert(u, _, v) | crate::UpdateOp::Delete(u, _, v) => {
                            (u, v)
                        }
                    })
                    .find(|&(u, v)| u >= self.n || v >= self.n)
                    .unwrap();
                return Err(SpblaError::IndexOutOfBounds {
                    row,
                    col,
                    shape: (self.n, self.n),
                });
            }
        }

        let mut history = self.history.lock().unwrap();
        let prev = history.last().unwrap().clone();

        let mut labels_host = prev.labels_host.clone();
        let mut labels_dev = prev.labels_dev.clone();
        let mut label_deltas = Vec::new();
        let mut candidates: FxHashSet<Pair> = FxHashSet::default();

        for (label, inserts, deletes) in batch.net_per_label() {
            let old = prev.labels_host.get(&label);
            let real_ins: Vec<Pair> = inserts
                .into_iter()
                .filter(|&(u, v)| !old.is_some_and(|c| c.get(u, v)))
                .collect();
            let real_del: Vec<Pair> = deletes
                .into_iter()
                .filter(|&(u, v)| old.is_some_and(|c| c.get(u, v)))
                .collect();
            if real_ins.is_empty() && real_del.is_empty() {
                continue;
            }
            candidates.extend(real_ins.iter().copied());
            candidates.extend(real_del.iter().copied());

            let mut pairs: FxHashSet<Pair> = old.map(|c| c.iter().collect()).unwrap_or_default();
            pairs.extend(real_ins.iter().copied());
            for e in &real_del {
                pairs.remove(e);
            }
            if pairs.is_empty() {
                labels_host.remove(&label);
                labels_dev.remove(&label);
            } else {
                let mut pairs: Vec<Pair> = pairs.into_iter().collect();
                pairs.sort_unstable();
                let csr = CsrBool::from_pairs(self.n, self.n, &pairs)?;
                let dev = match prev.labels_dev.get(&label) {
                    Some(dev) => dev.apply_updates(&real_ins, &real_del)?,
                    None => DistMatrix::from_csr(&self.grid, &csr)?,
                };
                labels_host.insert(label, Arc::new(csr));
                labels_dev.insert(label, Arc::new(dev));
            }
            label_deltas.push((label, real_ins, real_del));
        }

        let next = Arc::new(GraphSnapshot {
            version: prev.version() + 1,
            n: self.n,
            labels_host,
            labels_dev,
        });

        // Adjacency-union delta: membership of each touched edge before
        // vs after, computed host-side so view maintenance spends zero
        // kernel launches discovering what changed.
        let mut adj_inserted = Vec::new();
        let mut adj_deleted = Vec::new();
        for &e in &candidates {
            let before = prev.adjacency_has(e);
            let after = next.adjacency_has(e);
            if !before && after {
                adj_inserted.push(e);
            } else if before && !after {
                adj_deleted.push(e);
            }
        }
        adj_inserted.sort_unstable();
        adj_deleted.sort_unstable();

        if label_deltas.is_empty() {
            // No-op batch: no new version, nothing to prune.
            return Ok(AppliedBatch {
                version: prev.version(),
                label_deltas,
                adj_inserted,
                adj_deleted,
                snapshot: prev,
            });
        }

        history.push(next.clone());
        // Prune history: keep the latest and anything pinned outside the
        // store. After `drop(prev)` the vector holds exactly one Arc per
        // snapshot, so a strong count above one means an external pin.
        drop(prev);
        let len = history.len();
        let mut keep = Vec::with_capacity(len);
        for (i, snap) in history.drain(..).enumerate() {
            if i + 1 == len || Arc::strong_count(&snap) > 1 {
                keep.push(snap);
            }
        }
        *history = keep;

        Ok(AppliedBatch {
            version: next.version(),
            label_deltas,
            adj_inserted,
            adj_deleted,
            snapshot: next,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spbla_lang::SymbolTable;

    fn grid(n: usize) -> DeviceGrid {
        DeviceGrid::new(n)
    }

    #[test]
    fn cow_shares_untouched_labels() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let g = LabeledGraph::from_triples(6, [(0, a, 1), (1, a, 2), (2, b, 3)]);
        let store = VersionedGraph::new(&grid(2), &g).unwrap();
        let v0 = store.pin();

        let mut batch = UpdateBatch::new();
        batch.insert(3, a, 4);
        let applied = store.apply(&batch).unwrap();
        assert_eq!(applied.version, 1);
        assert_eq!(applied.label_deltas.len(), 1);
        assert_eq!(applied.adj_inserted, vec![(3, 4)]);
        assert!(applied.adj_deleted.is_empty());

        // Label `b` was untouched: both versions share the same Arc.
        let v1 = applied.snapshot.clone();
        assert!(Arc::ptr_eq(
            v0.label_host(b).unwrap(),
            v1.label_host(b).unwrap()
        ));
        assert!(Arc::ptr_eq(
            v0.label_dev(b).unwrap(),
            v1.label_dev(b).unwrap()
        ));
        // Label `a` was rebuilt.
        assert!(!Arc::ptr_eq(
            v0.label_host(a).unwrap(),
            v1.label_host(a).unwrap()
        ));
        assert_eq!(v1.label_host(a).unwrap().nnz(), 3);
        assert_eq!(v0.label_host(a).unwrap().nnz(), 2);
        // Device side agrees with host side.
        assert_eq!(
            v1.label_dev(a).unwrap().gather().to_pairs(),
            v1.label_host(a).unwrap().to_pairs()
        );
    }

    #[test]
    fn pinned_versions_survive_pruning() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(8, [(0, a, 1)]);
        let store = VersionedGraph::new(&grid(1), &g).unwrap();

        let pinned = store.pin(); // pin version 0
        for k in 1..4 {
            let mut batch = UpdateBatch::new();
            batch.insert(k, a, k + 1);
            store.apply(&batch).unwrap();
        }
        assert_eq!(store.version(), 3);
        // Version 0 is pinned, versions 1 and 2 were pruned.
        assert_eq!(store.history_len(), 2);
        assert!(store.pin_version(0).is_some());
        assert!(store.pin_version(1).is_none());
        assert_eq!(pinned.n_edges(), 1);

        drop(pinned);
        let mut batch = UpdateBatch::new();
        batch.insert(6, a, 7);
        store.apply(&batch).unwrap();
        // The unpinned version 0 is now reclaimed too.
        assert_eq!(store.history_len(), 1);
        assert!(store.pin_version(0).is_none());
    }

    #[test]
    fn label_vocabulary_grows_and_shrinks() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let c = t.intern("c");
        let g = LabeledGraph::from_triples(5, [(0, a, 1)]);
        let store = VersionedGraph::new(&grid(2), &g).unwrap();

        let mut batch = UpdateBatch::new();
        batch.insert(1, c, 2); // brand-new label
        let applied = store.apply(&batch).unwrap();
        assert_eq!(applied.snapshot.labels(), vec![a, c]);
        assert_eq!(
            applied.snapshot.label_dev(c).unwrap().gather().to_pairs(),
            vec![(1, 2)]
        );

        let mut batch = UpdateBatch::new();
        batch.delete(1, c, 2); // label empties out again
        let applied = store.apply(&batch).unwrap();
        assert_eq!(applied.snapshot.labels(), vec![a]);
        assert_eq!(applied.adj_deleted, vec![(1, 2)]);
    }

    #[test]
    fn adjacency_delta_respects_multi_label_overlap() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        // Edge (0,1) carries both labels.
        let g = LabeledGraph::from_triples(4, [(0, a, 1), (0, b, 1)]);
        let store = VersionedGraph::new(&grid(1), &g).unwrap();

        // Deleting only the `a` copy leaves the union adjacency intact.
        let mut batch = UpdateBatch::new();
        batch.delete(0, a, 1);
        let applied = store.apply(&batch).unwrap();
        assert!(applied.adj_deleted.is_empty());
        assert_eq!(applied.label_deltas.len(), 1);

        // Deleting the `b` copy too now removes it from the union.
        let mut batch = UpdateBatch::new();
        batch.delete(0, b, 1);
        let applied = store.apply(&batch).unwrap();
        assert_eq!(applied.adj_deleted, vec![(0, 1)]);

        // Re-inserting under one label is a union-level insert.
        let mut batch = UpdateBatch::new();
        batch.insert(0, b, 1);
        let applied = store.apply(&batch).unwrap();
        assert_eq!(applied.adj_inserted, vec![(0, 1)]);
    }

    #[test]
    fn noop_batch_does_not_advance_version() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(4, [(0, a, 1)]);
        let store = VersionedGraph::new(&grid(1), &g).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(0, a, 1).delete(2, a, 3); // both are no-ops
        let applied = store.apply(&batch).unwrap();
        assert!(applied.is_noop());
        assert_eq!(applied.version, 0);
        assert_eq!(store.version(), 0);
    }

    #[test]
    fn out_of_bounds_batch_is_rejected() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let g = LabeledGraph::from_triples(4, [(0, a, 1)]);
        let store = VersionedGraph::new(&grid(1), &g).unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(0, a, 9);
        assert!(matches!(
            store.apply(&batch),
            Err(SpblaError::IndexOutOfBounds { .. })
        ));
        assert_eq!(store.version(), 0);
    }
}
