//! Incrementally maintained SCC condensation over a graph stream.
//!
//! The planner's condensed-closure preprocessing wants the current
//! [`Condensation`] at every version without re-running Tarjan over the
//! whole vertex set per batch. The maintenance rule mirrors the DRed
//! asymmetry the closure view uses:
//!
//! * **Inserts** can only *merge* components — the new partition is the
//!   SCC partition of the component graph, so
//!   [`Condensation::merge_with_edges`] refreshes the view with a
//!   Tarjan run over `n_components` nodes instead of `n_vertices`.
//!   Deletes of *inter*-component edges ride the same cheap path (they
//!   cannot split anything).
//! * **Deletes inside a component** may split it; there is no cheap
//!   certificate, so the view falls back to a full recompute — the
//!   escape hatch, counted in [`SccStats::recomputes`].
//!
//! Either path must land on a condensation whose [canonical
//! form](Condensation::canonical) is bit-identical to a fresh Tarjan
//! run — `report condense` gates on exactly that under a LUBM
//! insert/delete stream.

use rustc_hash::FxHashSet;

use spbla_core::Pair;
use spbla_prep::Condensation;

use crate::checksum_pairs;
use crate::closure_view::MaintainMode;

/// Maintenance counters for one [`SccView`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SccStats {
    /// Batches applied.
    pub batches: u64,
    /// Batches absorbed on the cheap component-graph path.
    pub incremental: u64,
    /// Components merged away by inserts, summed over batches.
    pub merges: u64,
    /// Full vertex-level recomputes (intra-component deletes, or the
    /// view pinned to [`MaintainMode::Recompute`]).
    pub recomputes: u64,
}

/// The current condensation of a streamed graph, maintained per batch.
#[derive(Debug)]
pub struct SccView {
    n_vertices: u32,
    edges: FxHashSet<Pair>,
    cond: Condensation,
    mode: MaintainMode,
    stats: SccStats,
}

impl SccView {
    /// Build the view at the stream's current adjacency.
    pub fn new(n_vertices: u32, pairs: &[Pair], mode: MaintainMode) -> SccView {
        let edges: FxHashSet<Pair> = pairs.iter().copied().collect();
        let cond = Condensation::build(n_vertices, pairs);
        SccView {
            n_vertices,
            edges,
            cond,
            mode,
            stats: SccStats::default(),
        }
    }

    /// The maintained condensation.
    pub fn condensation(&self) -> &Condensation {
        &self.cond
    }

    /// Maintenance counters so far.
    pub fn stats(&self) -> SccStats {
        self.stats
    }

    /// Current edge count (label-union adjacency).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Apply one batch's adjacency delta (edges actually inserted /
    /// actually deleted, as reported by the versioned store).
    pub fn apply(&mut self, inserted: &[Pair], deleted: &[Pair]) {
        self.stats.batches += 1;
        // A delete inside a component can split it — detect against the
        // *pre-batch* partition, where every deleted edge's endpoints
        // still carry their old component ids.
        let splitting = deleted
            .iter()
            .any(|&(u, v)| self.cond.comp_of[u as usize] == self.cond.comp_of[v as usize]);
        for e in deleted {
            self.edges.remove(e);
        }
        for &e in inserted {
            self.edges.insert(e);
        }
        if self.mode == MaintainMode::Recompute || splitting {
            self.stats.recomputes += 1;
            self.recompute();
            return;
        }
        let edges: Vec<Pair> = self.sorted_edges();
        let before = self.cond.n_components();
        self.cond = self.cond.merge_with_edges(&edges);
        self.stats.incremental += 1;
        self.stats.merges += u64::from(before - self.cond.n_components());
    }

    /// Rebuild from scratch (vertex-level Tarjan).
    pub fn recompute(&mut self) {
        let edges = self.sorted_edges();
        self.cond = Condensation::build(self.n_vertices, &edges);
    }

    /// Checksum of the canonical form — the bit-identity witness used
    /// by `report condense` to compare incremental against recompute.
    pub fn checksum(&self) -> u64 {
        let (parts, dag) = self.cond.canonical();
        let membership: Vec<Pair> = parts
            .iter()
            .flat_map(|m| {
                let rep = m[0];
                m.iter().map(move |&v| (rep, v))
            })
            .collect();
        checksum_pairs(&membership) ^ checksum_pairs(&dag).rotate_left(17)
    }

    fn sorted_edges(&self) -> Vec<Pair> {
        let mut edges: Vec<Pair> = self.edges.iter().copied().collect();
        edges.sort_unstable();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_checksum(n: u32, edges: &FxHashSet<Pair>) -> u64 {
        let mut pairs: Vec<Pair> = edges.iter().copied().collect();
        pairs.sort_unstable();
        let mut view = SccView::new(n, &pairs, MaintainMode::Recompute);
        view.recompute();
        view.checksum()
    }

    #[test]
    fn inserts_merge_cheaply_and_match_recompute() {
        let n = 8u32;
        let mut view = SccView::new(n, &[(0, 1), (1, 2), (3, 4)], MaintainMode::Incremental);
        assert_eq!(view.condensation().n_components(), 8);
        // Close 0→1→2→0: merge into one SCC, no recompute.
        view.apply(&[(2, 0)], &[]);
        assert_eq!(view.condensation().n_components(), 6);
        assert_eq!(view.stats().recomputes, 0);
        assert_eq!(view.stats().incremental, 1);
        assert_eq!(view.stats().merges, 2);
        assert_eq!(view.checksum(), fresh_checksum(n, &view.edges));
    }

    #[test]
    fn inter_component_delete_stays_incremental() {
        let mut view = SccView::new(5, &[(0, 1), (1, 0), (1, 2)], MaintainMode::Incremental);
        view.apply(&[], &[(1, 2)]);
        assert_eq!(view.stats().recomputes, 0);
        assert_eq!(view.checksum(), fresh_checksum(5, &view.edges));
    }

    #[test]
    fn intra_component_delete_falls_back() {
        let mut view = SccView::new(3, &[(0, 1), (1, 0)], MaintainMode::Incremental);
        assert_eq!(view.condensation().n_components(), 2);
        view.apply(&[], &[(1, 0)]);
        assert_eq!(view.stats().recomputes, 1);
        assert_eq!(view.condensation().n_components(), 3);
        assert_eq!(view.checksum(), fresh_checksum(3, &view.edges));
    }

    #[test]
    fn mixed_stream_is_bit_identical_to_recompute_at_every_version() {
        let n = 16u32;
        let mut view = SccView::new(n, &[], MaintainMode::Incremental);
        let mut state = 7u64;
        let mut present: Vec<Pair> = Vec::new();
        for step in 0..60 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) % u64::from(n)) as u32;
            let v = ((state >> 13) % u64::from(n)) as u32;
            if step % 5 == 4 && !present.is_empty() {
                let victim = present.remove((state >> 7) as usize % present.len());
                view.apply(&[], &[victim]);
            } else if !view.edges.contains(&(u, v)) {
                present.push((u, v));
                view.apply(&[(u, v)], &[]);
            }
            assert_eq!(
                view.checksum(),
                fresh_checksum(n, &view.edges),
                "diverged at step {step}"
            );
        }
        assert!(view.stats().incremental > 0, "cheap path exercised");
    }
}
