//! Incrementally maintained reflexive-transitive closure.
//!
//! The view keeps `R = A⁺ ∪ I` — the *reflexive* closure of an
//! adjacency matrix `A` — device-resident, and repairs it in place as
//! edge batches arrive. Reflexivity buys the incremental paths their
//! one-shot structure: with `R·R = R`,
//!
//! * **insertions** `D` change the closure by exactly `(R·D·R)⁺`, and
//!   every genuinely new pair in that set is a chain through the
//!   frontier `F = (R·D·R) ∧ ¬R`, so the repair is
//!   `R ← R ∪ F⁺` — two launches when the batch creates nothing new,
//!   a short [`DistMatrix::closure_delta`] over the (small) frontier
//!   when it does;
//! * **deletions** `D` over-delete in one shot, DRed-style: the exact
//!   set of pairs with *some* derivation through a deleted edge is
//!   `O = (R·D·R) ∧ R` (no fixpoint needed — `R` is already closed),
//!   the diagonal is exempt (reflexivity is unconditional), pairs
//!   outside `O` are untouched, and the survivors are rederived from
//!   `T ∪ (A' ∧ O)` by masked squaring.
//!
//! When the frontier (or over-delete set) exceeds a configurable
//! fraction of `R`, the view abandons the incremental path and
//! recomputes from scratch — a big-enough batch makes recompute the
//! cheaper schedule.

use spbla_core::{Pair, Result};
use spbla_multidev::{DeviceGrid, DistMatrix};

/// How the view reacts to an update batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MaintainMode {
    /// Semi-naïve frontier restart for inserts, DRed over-delete and
    /// rederive for deletes, with automatic fallback (default).
    #[default]
    Incremental,
    /// Recompute the closure from the updated adjacency every batch
    /// (the ablation baseline).
    Recompute,
}

/// Maintenance tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MaintainConfig {
    /// Maintenance strategy.
    pub mode: MaintainMode,
    /// Incremental-path escape hatch: when the insert frontier or the
    /// over-delete set grows past `fallback_fraction · nnz(R)`, fall
    /// back to a full recompute for that batch.
    pub fallback_fraction: f64,
}

impl Default for MaintainConfig {
    fn default() -> Self {
        MaintainConfig {
            mode: MaintainMode::Incremental,
            fallback_fraction: 0.25,
        }
    }
}

/// Counters describing how batches were absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Batches applied.
    pub batches: u64,
    /// Batches absorbed by the incremental insert path.
    pub incremental_inserts: u64,
    /// Batches absorbed by the DRed delete path.
    pub dred_deletes: u64,
    /// Incremental attempts abandoned for a full recompute because the
    /// touched frontier exceeded the threshold.
    pub fallbacks: u64,
    /// Full recomputes (mode, fallback, or initial build).
    pub recomputes: u64,
}

/// A reflexive-transitive-closure view over a device-resident
/// adjacency matrix, maintained under edge insert/delete batches.
#[derive(Debug)]
pub struct ClosureView {
    adjacency: DistMatrix,
    closure: DistMatrix,
    identity: DistMatrix,
    config: MaintainConfig,
    stats: MaintainStats,
}

impl ClosureView {
    /// Build the view over `n`×`n` adjacency `pairs`, computing the
    /// initial closure with the full schedule.
    pub fn new(
        grid: &DeviceGrid,
        n: u32,
        pairs: &[Pair],
        config: MaintainConfig,
    ) -> Result<ClosureView> {
        let adjacency = DistMatrix::from_pairs(grid, n, n, pairs)?;
        let identity = DistMatrix::identity(grid, n)?;
        let mut view = ClosureView {
            closure: identity.duplicate()?,
            adjacency,
            identity,
            config,
            stats: MaintainStats::default(),
        };
        view.recompute()?;
        view.stats = MaintainStats::default();
        Ok(view)
    }

    /// The maintained adjacency matrix.
    pub fn adjacency(&self) -> &DistMatrix {
        &self.adjacency
    }

    /// The maintained reflexive closure `R = A⁺ ∪ I`.
    pub fn closure(&self) -> &DistMatrix {
        &self.closure
    }

    /// Maintenance counters so far.
    pub fn stats(&self) -> MaintainStats {
        self.stats
    }

    /// Sorted host pairs of the reflexive closure.
    pub fn pairs(&self) -> Vec<Pair> {
        self.closure.gather().to_pairs()
    }

    /// FNV-1a checksum of the closure's sorted pairs — the currency of
    /// bit-identical equivalence checks across maintenance modes.
    pub fn checksum(&self) -> u64 {
        crate::checksum_pairs(&self.pairs())
    }

    /// Apply one batch of adjacency-level edge changes. `inserted` and
    /// `deleted` must be disjoint and *real* (inserted edges absent
    /// from, deleted edges present in, the current adjacency) — exactly
    /// what [`crate::AppliedBatch`] reports for the label union.
    pub fn apply(&mut self, inserted: &[Pair], deleted: &[Pair]) -> Result<()> {
        self.stats.batches += 1;
        if self.config.mode == MaintainMode::Recompute {
            self.adjacency = self.adjacency.apply_updates(inserted, deleted)?;
            return self.recompute();
        }
        // Deletions first: DRed runs against the pre-insert adjacency,
        // then the insert pass tops the repaired closure up. The two
        // sets are disjoint, so the order is semantically free.
        if !deleted.is_empty() {
            self.adjacency = self.adjacency.apply_updates(&[], deleted)?;
            self.delete_pass(deleted)?;
        }
        if !inserted.is_empty() {
            self.adjacency = self.adjacency.apply_updates(inserted, &[])?;
            self.insert_pass(inserted)?;
        }
        Ok(())
    }

    /// Full rebuild: `R = A⁺ ∪ I` from the current adjacency.
    fn recompute(&mut self) -> Result<()> {
        self.stats.recomputes += 1;
        let plus = self.adjacency.closure_delta()?;
        self.closure = plus.ewise_add(&self.identity)?;
        Ok(())
    }

    /// Semi-naïve restart from the new-edge frontier.
    fn insert_pass(&mut self, inserted: &[Pair]) -> Result<()> {
        let grid = self.closure.grid().clone();
        let (n, _) = self.closure.shape();
        let d = DistMatrix::from_pairs(&grid, n, n, inserted)?;
        // F = (R·D·R) ∧ ¬R: every closure pair the batch creates is a
        // chain of F edges (in-R hops collapse into their neighbours).
        // The fused kernel lands F in the closure in the same launch as
        // the masked product and reports its size for free — the old
        // compmask + `is_empty` probe + `ewise_add` trio is one call.
        let l = self.closure.mxm(&d)?;
        let step = self.closure.mxm_accum_compmask(&l, &self.closure, true)?;
        if step.fresh_nnz == 0 {
            // The new edges were already implied: 2 launches, done.
            self.stats.incremental_inserts += 1;
            return Ok(());
        }
        if self.exceeds_fallback(step.fresh_nnz) {
            self.stats.fallbacks += 1;
            return self.recompute();
        }
        let mut c = step.acc;
        // Single-edge batches skip the frontier fixpoint: with one new
        // edge `(u,v)`, `F = (R⁻¹u × vR) ∧ ¬R` and composing two F-pairs
        // `(a,b)·(b,d)` gives `a→u→v→b→u→v→d`, whose endpoints still lie
        // in `R⁻¹u × vR` — so F-chains never leave `F ∪ R`, and
        // `R' = R ∪ F` exactly. Multi-edge batches can chain *different*
        // new edges (`R·D·R·D·R` pairs) and need the fixpoint — run
        // semi-naïvely from the already-accumulated `R ∪ F` with F as
        // the delta (`R·F ∪ F·R ⊆ R ∪ F`, so right-appending the delta
        // reaches every F-chain).
        if inserted.len() > 1 {
            let mut delta = step.fresh.expect("fresh requested");
            loop {
                let round = c.mxm_accum_compmask(&c, &delta, true)?;
                if round.fresh_nnz == 0 {
                    break;
                }
                c = round.acc;
                delta = round.fresh.expect("fresh requested");
            }
        }
        self.closure = c;
        self.stats.incremental_inserts += 1;
        Ok(())
    }

    /// DRed: one-shot over-delete, then rederive by masked squaring.
    fn delete_pass(&mut self, deleted: &[Pair]) -> Result<()> {
        let grid = self.closure.grid().clone();
        let (n, _) = self.closure.shape();
        let d = DistMatrix::from_pairs(&grid, n, n, deleted)?;
        // O = (R·D·R) ∧ R, minus the diagonal: exactly the pairs with
        // some derivation through a deleted edge. One shot — R closed
        // means every such derivation factors as in-R · deleted · in-R.
        let l = self.closure.mxm(&d)?;
        let over = l
            .mxm_masked(&self.closure, &self.closure)?
            .ewise_andnot(&self.identity)?;
        if over.is_empty() {
            // No closure pair ever routed through a deleted edge.
            self.stats.dred_deletes += 1;
            return Ok(());
        }
        if self.exceeds_fallback(over.nnz()) {
            self.stats.fallbacks += 1;
            return self.recompute();
        }
        // Certainly-valid pairs: everything outside O, plus surviving
        // adjacency edges inside O. This sandwich `A' ∪ I ⊆ C ⊆ R'`
        // makes the masked squaring below converge to exactly R'.
        let keep = self.closure.ewise_andnot(&over)?;
        let seeds = self.adjacency.ewise_mult(&over)?;
        let mut c = keep.ewise_add(&seeds)?;
        loop {
            // Fused masked squaring: accumulate `(C·C) ∧ ¬C` into C and
            // read the growth signal off the kernel.
            let step = c.mxm_accum_compmask(&c, &c, false)?;
            if step.fresh_nnz == 0 {
                break;
            }
            c = step.acc;
        }
        self.closure = c;
        self.stats.dred_deletes += 1;
        Ok(())
    }

    fn exceeds_fallback(&self, touched: usize) -> bool {
        let budget = self.config.fallback_fraction * self.closure.nnz() as f64;
        (touched as f64) > budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashSet;

    fn grid(n: usize) -> DeviceGrid {
        DeviceGrid::new(n)
    }

    /// Host oracle: reflexive-transitive closure by saturation.
    fn oracle(n: u32, edges: &FxHashSet<Pair>) -> Vec<Pair> {
        let mut reach: FxHashSet<Pair> = (0..n).map(|v| (v, v)).collect();
        reach.extend(edges.iter().copied());
        loop {
            let mut grew = false;
            let snapshot: Vec<Pair> = reach.iter().copied().collect();
            for &(a, b) in &snapshot {
                for &(c, d) in &snapshot {
                    if b == c && reach.insert((a, d)) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        let mut out: Vec<Pair> = reach.into_iter().collect();
        out.sort_unstable();
        out
    }

    fn check_against_oracle(view: &ClosureView, n: u32, edges: &FxHashSet<Pair>) {
        assert_eq!(view.pairs(), oracle(n, edges));
        let mut adj: Vec<Pair> = edges.iter().copied().collect();
        adj.sort_unstable();
        assert_eq!(view.adjacency().gather().to_pairs(), adj);
    }

    #[test]
    fn insert_path_matches_oracle() {
        for devices in [1, 2] {
            let grid = grid(devices);
            let n = 7;
            let mut edges: FxHashSet<Pair> = [(0, 1), (1, 2), (4, 5)].into_iter().collect();
            let pairs: Vec<Pair> = {
                let mut p: Vec<Pair> = edges.iter().copied().collect();
                p.sort_unstable();
                p
            };
            // A large budget keeps the small test graph on the
            // incremental path (the bridging batch below touches a big
            // fraction of a tiny closure).
            let cfg = MaintainConfig {
                fallback_fraction: 10.0,
                ..MaintainConfig::default()
            };
            let mut view = ClosureView::new(&grid, n, &pairs, cfg).unwrap();
            check_against_oracle(&view, n, &edges);

            // A bridging edge creates many new closure pairs.
            view.apply(&[(2, 3), (3, 4)], &[]).unwrap();
            edges.extend([(2, 3), (3, 4)]);
            check_against_oracle(&view, n, &edges);
            // An already-implied edge creates nothing new.
            view.apply(&[(0, 2)], &[]).unwrap();
            edges.insert((0, 2));
            check_against_oracle(&view, n, &edges);
            let stats = view.stats();
            assert_eq!(stats.incremental_inserts, 2);
            assert_eq!(stats.recomputes, 0);
        }
    }

    #[test]
    fn delete_path_matches_oracle() {
        for devices in [1, 2] {
            let grid = grid(devices);
            let n = 6;
            // A cycle plus a chord: deleting one cycle edge must keep the
            // pairs still derivable the long way round.
            let mut edges: FxHashSet<Pair> = [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]
                .into_iter()
                .collect();
            let pairs: Vec<Pair> = {
                let mut p: Vec<Pair> = edges.iter().copied().collect();
                p.sort_unstable();
                p
            };
            // A huge fallback budget forces the DRed path proper.
            let cfg = MaintainConfig {
                fallback_fraction: 10.0,
                ..MaintainConfig::default()
            };
            let mut view = ClosureView::new(&grid, n, &pairs, cfg).unwrap();

            view.apply(&[], &[(1, 2)]).unwrap();
            edges.remove(&(1, 2));
            check_against_oracle(&view, n, &edges);
            assert_eq!(view.stats().dred_deletes, 1);
            assert_eq!(view.stats().recomputes, 0);

            // Now cut the cycle for real.
            view.apply(&[], &[(3, 0)]).unwrap();
            edges.remove(&(3, 0));
            check_against_oracle(&view, n, &edges);
        }
    }

    #[test]
    fn mixed_batch_and_self_loop_delete() {
        let grid = grid(2);
        let n = 5;
        let mut edges: FxHashSet<Pair> = [(0, 0), (0, 1), (1, 2)].into_iter().collect();
        let pairs: Vec<Pair> = {
            let mut p: Vec<Pair> = edges.iter().copied().collect();
            p.sort_unstable();
            p
        };
        let cfg = MaintainConfig {
            fallback_fraction: 10.0,
            ..MaintainConfig::default()
        };
        let mut view = ClosureView::new(&grid, n, &pairs, cfg).unwrap();
        // Delete a self-loop (the diagonal must survive — closure is
        // reflexive by definition) and insert elsewhere, same batch.
        view.apply(&[(2, 3)], &[(0, 0)]).unwrap();
        edges.remove(&(0, 0));
        edges.insert((2, 3));
        check_against_oracle(&view, n, &edges);
    }

    #[test]
    fn fallback_and_recompute_modes_agree_with_incremental() {
        let grid = grid(1);
        let n = 8;
        let base: Vec<Pair> = vec![(0, 1), (2, 3), (5, 6)];
        let batches: Vec<(Vec<Pair>, Vec<Pair>)> = vec![
            (vec![(1, 2), (3, 4)], vec![]),
            (vec![(4, 5)], vec![(2, 3)]),
            (vec![(6, 7), (7, 0)], vec![]),
        ];
        let mut results = Vec::new();
        for cfg in [
            MaintainConfig::default(),
            // Zero budget: every non-trivial batch falls back.
            MaintainConfig {
                fallback_fraction: 0.0,
                ..MaintainConfig::default()
            },
            MaintainConfig {
                mode: MaintainMode::Recompute,
                ..MaintainConfig::default()
            },
        ] {
            let mut view = ClosureView::new(&grid, n, &base, cfg).unwrap();
            let mut sums = Vec::new();
            for (ins, del) in &batches {
                view.apply(ins, del).unwrap();
                sums.push(view.checksum());
            }
            results.push((sums, view.stats()));
        }
        assert_eq!(results[0].0, results[1].0);
        assert_eq!(results[0].0, results[2].0);
        // The zero-budget run really exercised the fallback path…
        assert!(results[1].1.fallbacks > 0);
        // …and the recompute run never took an incremental path.
        assert_eq!(results[2].1.incremental_inserts, 0);
        assert_eq!(results[2].1.recomputes, batches.len() as u64);
    }

    #[test]
    fn implied_insert_is_cheaper_than_recompute() {
        // Separate grids so launch meters don't mix.
        let base: Vec<Pair> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let n = 8;
        let mut spent = Vec::new();
        for mode in [MaintainMode::Incremental, MaintainMode::Recompute] {
            let grid = grid(1);
            let cfg = MaintainConfig {
                mode,
                ..MaintainConfig::default()
            };
            let mut view = ClosureView::new(&grid, n, &base, cfg).unwrap();
            let before = grid.total_stats().launches;
            // (0,2) is already implied: the incremental path stops after
            // the adjacency update, L, and the empty frontier test,
            // while recompute re-runs the whole fixpoint.
            view.apply(&[(0, 2)], &[]).unwrap();
            spent.push(grid.total_stats().launches - before);
        }
        assert!(
            spent[0] < spent[1],
            "implied insert: incremental {} vs recompute {} launches",
            spent[0],
            spent[1]
        );
    }
}
