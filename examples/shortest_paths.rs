//! Semiring swap demo: the same sparse-matrix machinery, three algebras.
//!
//! The paper's future work calls for "custom semirings such as Min-Plus";
//! the generic comparator library already supports them, so this example
//! runs (1) Boolean reachability on `spbla-core`, (2) min-plus
//! Bellman–Ford, and (3) plus-times path counting on `spbla-generic`,
//! over one road-network-like graph.
//!
//! Run: `cargo run -p spbla-examples --bin shortest_paths`

use spbla_core::{Instance, Matrix};
use spbla_generic::spmv::min_plus_sssp;
use spbla_generic::{spgemm, CsrMatrix, MinPlusU32, PlusTimesU64};
use spbla_graph::closure::closure_squaring;

fn main() {
    // A small weighted road network: (from, to, minutes).
    let roads: &[(u32, u32, u32)] = &[
        (0, 1, 4),
        (0, 2, 2),
        (1, 3, 5),
        (2, 1, 1),
        (2, 3, 8),
        (3, 4, 3),
        (1, 4, 11),
    ];
    let n = 5u32;

    // 1. Boolean reachability (structure only).
    let inst = Instance::cuda_sim();
    let pattern: Vec<(u32, u32)> = roads.iter().map(|&(u, v, _)| (u, v)).collect();
    let adj = Matrix::from_pairs(&inst, n, n, &pattern).expect("adjacency");
    let closure = closure_squaring(&adj).expect("closure");
    println!("reachable pairs (Boolean semiring): {:?}", closure.read());

    // 2. Min-plus shortest paths.
    let weighted = CsrMatrix::<MinPlusU32>::from_triples(n, n, roads);
    let dist = min_plus_sssp(&weighted, 0);
    println!("shortest minutes from 0 (min-plus): {dist:?}");
    assert_eq!(dist[4], 11); // 0→2(2)→1(1)→3(5)→4(3)

    // 3. Path counting over (+,×).
    let ones: Vec<(u32, u32, u64)> = roads.iter().map(|&(u, v, _)| (u, v, 1)).collect();
    let counted = CsrMatrix::<PlusTimesU64>::from_triples(n, n, &ones);
    let two_hop = spgemm::mxm(&counted, &counted);
    let three_hop = spgemm::mxm(&two_hop, &counted);
    println!(
        "number of 2-hop routes 0→3: {}, 3-hop routes 0→4: {}",
        two_hop.get(0, 3),
        three_hop.get(0, 4)
    );
    println!("shortest_paths: done");
}
