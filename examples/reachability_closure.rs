//! Reachability on a taxonomy: transitive closure and matrix BFS — the
//! "reduce graph analysis to linear algebra" pitch of the introduction,
//! plus a format comparison (CSR vs COO memory) on a hypersparse matrix.
//!
//! Run: `cargo run -p spbla-examples --bin reachability_closure`

use spbla_core::{CooBool, CsrBool, Instance, Matrix};
use spbla_data::rdf::geospecies_like;
use spbla_graph::bfs::{bfs_levels, reachable_set};
use spbla_graph::closure::closure_squaring;
use spbla_lang::SymbolTable;

fn main() {
    let mut table = SymbolTable::new();
    let graph = geospecies_like(0.002, &mut table, 11);
    let bt = table
        .get("broaderTransitive")
        .expect("generator interns bt");
    println!(
        "geospecies-like graph: {} vertices, {} edges, {} broaderTransitive",
        graph.n_vertices(),
        graph.n_edges(),
        graph.label_count(bt)
    );

    // Closure of the taxonomy hierarchy: ancestor relation.
    let inst = Instance::cuda_sim();
    let hierarchy = graph.label_matrix(&inst, bt).expect("upload");
    let t0 = std::time::Instant::now();
    let ancestors = closure_squaring(&hierarchy).expect("closure");
    println!(
        "broaderTransitive closure: {} → {} pairs in {:.2?}",
        hierarchy.nnz(),
        ancestors.nnz(),
        t0.elapsed()
    );

    // Matrix BFS over the full adjacency.
    let adjacency = Matrix::from_csr(&inst, graph.adjacency_csr()).expect("upload");
    let levels = bfs_levels(&adjacency, 0, &inst).expect("bfs");
    let reached = reachable_set(&adjacency, 0, &inst).expect("bfs");
    let max_level = levels.iter().flatten().max().copied().unwrap_or(0);
    println!(
        "BFS from vertex 0: {} reachable, eccentricity {}",
        reached.len(),
        max_level
    );

    // Format memory comparison on the hypersparse hierarchy matrix:
    // the paper's reason clBool chose COO.
    let csr: CsrBool = graph.label_csr(bt);
    let coo = CooBool::from(&csr);
    println!(
        "hierarchy matrix ({} rows, {} nnz): CSR {} B vs COO {} B — {}",
        csr.nrows(),
        csr.nnz(),
        csr.memory_bytes(),
        coo.memory_bytes(),
        if coo.memory_bytes() < csr.memory_bytes() {
            "COO wins on hypersparse data, as §IV argues"
        } else {
            "CSR wins at this density"
        }
    );
    println!("reachability_closure: done");
}
