//! Compare all RPQ evaluation strategies and all four backends on one
//! workload — the "unified library" story: one query, many execution
//! plans, identical answers.
//!
//! Strategies: all-pairs Kronecker index (the paper's algorithm),
//! single-source frontier BFS, and derivative-based propagation (the
//! related-work baseline). Backends: cpu, cpu-dense, cuda-sim, cl-sim.
//!
//! Run: `cargo run -p spbla-examples --bin engines_compare`

use std::time::Instant;

use spbla_core::Instance;
use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_data::queries::{instantiate_template, template};
use spbla_graph::rpq::{RpqIndex, RpqOptions};
use spbla_graph::rpq_bfs::rpq_from_sources;
use spbla_graph::rpq_derivative::rpq_by_derivatives;
use spbla_lang::SymbolTable;

fn main() {
    let mut table = SymbolTable::new();
    let graph = lubm_like(3, &LubmConfig::default(), &mut table, 99);
    let regex = instantiate_template(
        template("Q2").expect("known template"),
        &["memberOf", "subOrganizationOf"],
        &mut table,
    );
    println!(
        "graph: {} vertices, {} edges; query Q2 = memberOf . subOrganizationOf*",
        graph.n_vertices(),
        graph.n_edges()
    );

    // Strategy 1: all-pairs index, on every backend.
    let mut reference: Option<Vec<(u32, u32)>> = None;
    for inst in [
        Instance::cpu(),
        Instance::cpu_dense(),
        Instance::cuda_sim(),
        Instance::cl_sim(),
    ] {
        let t0 = Instant::now();
        let idx =
            RpqIndex::build(&graph, &regex, &inst, &RpqOptions::default()).expect("index builds");
        let pairs = idx.reachable_pairs().expect("pairs");
        println!(
            "  index [{:<9}] {:>6} pairs, nnz {:>7}, {:>9.2?}",
            inst.backend().to_string(),
            pairs.len(),
            idx.index_nnz(),
            t0.elapsed()
        );
        match &reference {
            None => reference = Some(pairs),
            Some(r) => assert_eq!(r, &pairs, "backend disagreement"),
        }
    }
    let reference = reference.expect("at least one backend ran");

    // Strategy 2: single-source BFS for a handful of sources.
    let inst = Instance::cpu();
    let t0 = Instant::now();
    let mut bfs_pairs = Vec::new();
    for src in 0..graph.n_vertices() {
        for v in rpq_from_sources(&graph, &regex, &[src], &inst).expect("bfs") {
            bfs_pairs.push((src, v));
        }
    }
    bfs_pairs.sort_unstable();
    println!(
        "  frontier BFS (all sources, one at a time): {} pairs, {:?}",
        bfs_pairs.len(),
        t0.elapsed()
    );
    assert_eq!(bfs_pairs, reference);

    // Strategy 3: derivative propagation (no matrices at all).
    let t0 = Instant::now();
    let deriv = rpq_by_derivatives(&graph, &regex);
    println!(
        "  Brzozowski derivatives:                    {} pairs, {:?}",
        deriv.len(),
        t0.elapsed()
    );
    assert_eq!(deriv, reference);

    println!("engines_compare: all strategies agree — done");
}
