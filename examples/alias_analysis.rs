//! Memory-alias analysis as CFPQ — the paper's static-analysis workload
//! (the `MA` query over Linux-kernel-like points-to graphs, Table IV's
//! bottom half).
//!
//! Generates a kernel-module-like alias graph, runs both CFPQ engines
//! (`Tns` tensor algorithm and `Mtx` Azimov baseline), checks they
//! agree, and prints alias pairs with one witness derivation each.
//!
//! Run: `cargo run -p spbla-examples --bin alias_analysis`

use spbla_core::Instance;
use spbla_data::alias::{alias_graph, AliasConfig};
use spbla_data::grammars::grammar_ma;
use spbla_graph::cfpq::azimov::{AzimovIndex, AzimovOptions};
use spbla_graph::cfpq::tensor::{TnsIndex, TnsOptions};
use spbla_graph::paths::word_of;
use spbla_lang::{CnfGrammar, SymbolTable};

fn main() {
    let mut table = SymbolTable::new();
    let cfg = AliasConfig {
        units: 3,
        vars_per_unit: 30,
        ..AliasConfig::default()
    };
    let base = alias_graph(&cfg, &mut table, 7);
    let graph = base.with_inverses(&mut table);
    println!(
        "alias graph: {} vars+locations, {} edges (incl. inverses)",
        graph.n_vertices(),
        graph.n_edges()
    );

    let grammar = grammar_ma(&mut table);
    let inst = Instance::cuda_sim();

    let t0 = std::time::Instant::now();
    let tns =
        TnsIndex::build(&graph, &grammar, &inst, &TnsOptions::default()).expect("tensor CFPQ runs");
    let tns_time = t0.elapsed();
    let tns_pairs = tns.reachable_pairs();

    let cnf = CnfGrammar::from_grammar(&grammar);
    let t1 = std::time::Instant::now();
    let mtx = AzimovIndex::build(
        &graph,
        &cnf,
        &inst,
        &AzimovOptions {
            track_heights: true,
        },
    )
    .expect("Azimov CFPQ runs");
    let mtx_time = t1.elapsed();
    let mtx_pairs = mtx.reachable_pairs();

    assert_eq!(tns_pairs, mtx_pairs, "the two engines must agree");
    println!(
        "Tns: {} aliases in {tns_time:.2?} ({} iterations, index nnz {})",
        tns_pairs.len(),
        tns.iterations(),
        tns.index_nnz()
    );
    println!(
        "Mtx: {} aliases in {mtx_time:.2?} ({} iterations)",
        mtx_pairs.len(),
        mtx.iterations()
    );

    // Show a few alias pairs with witnesses from each engine.
    let mut shown = 0;
    for &(u, v) in tns_pairs.iter() {
        if u == v {
            continue;
        }
        if let Some(p) = mtx.extract_single_path(u, v) {
            let word: Vec<&str> = word_of(&p).iter().map(|&s| table.name(s)).collect();
            println!("  may-alias({u}, {v}): {}", word.join(" "));
            shown += 1;
            if shown >= 5 {
                break;
            }
        }
    }
    println!("alias_analysis: done");
}
