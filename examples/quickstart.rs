//! Quickstart: the full SPbLA operation set on a small matrix, on every
//! backend. Mirrors the cuBool README example (transitive closure of a
//! directed graph) and prints the per-backend device statistics so the
//! simulated-GPU accounting is visible.
//!
//! Run: `cargo run -p spbla-examples --bin quickstart`

use spbla_core::{Backend, Instance, Matrix};

fn demo(inst: &Instance) -> spbla_core::Result<()> {
    println!("== backend: {} ==", inst.backend());

    // Build a small directed graph's adjacency matrix.
    let edges = [(0, 1), (1, 2), (2, 3), (3, 1), (0, 4)];
    let a = Matrix::from_pairs(inst, 5, 5, &edges)?;
    println!("A: {}x{} with {} edges", a.nrows(), a.ncols(), a.nnz());

    // mxm: two-hop reachability.
    let two_hop = a.mxm(&a)?;
    println!("A^2 pairs: {:?}", two_hop.read());

    // Element-wise add: one-or-two-hop.
    let within_two = a.ewise_add(&two_hop)?;
    println!("A + A^2 nnz: {}", within_two.nnz());

    // Transitive closure (repeated multiply-add to fixpoint).
    let closure = a.transitive_closure()?;
    println!("closure nnz: {} (cycle 1→2→3→1 saturates)", closure.nnz());

    // Kronecker product grows a templated graph.
    let template = Matrix::from_pairs(inst, 2, 2, &[(0, 1), (1, 0)])?;
    let grown = template.kron(&a)?;
    println!(
        "template ⊗ A: {}x{}, nnz {}",
        grown.nrows(),
        grown.ncols(),
        grown.nnz()
    );

    // Structure ops: transpose, submatrix, reduce.
    let t = a.transpose()?;
    println!("Aᵀ pairs: {:?}", t.read());
    let sub = a.submatrix(0, 1, 3, 3)?;
    println!("A[0..3, 1..4] pairs: {:?}", sub.read());
    let nonempty_rows = a.reduce_to_column()?;
    println!("rows with out-edges: {:?}", nonempty_rows.indices());

    // Memory footprint per the backend's format.
    println!("matrix bytes: {}", a.memory_bytes());
    if let Some(dev) = inst.device() {
        let s = dev.stats();
        println!(
            "device: peak {} B, {} launches, {} H2D B, {} D2H B",
            s.peak_bytes, s.launches, s.h2d_bytes, s.d2h_bytes
        );
    }
    println!();
    Ok(())
}

fn main() {
    for inst in [Instance::cpu(), Instance::cuda_sim(), Instance::cl_sim()] {
        demo(&inst).expect("demo runs");
        assert!(matches!(
            inst.backend(),
            Backend::Cpu | Backend::CudaSim | Backend::ClSim
        ));
    }
    println!("quickstart: all backends agree — done");
}
