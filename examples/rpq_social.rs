//! Regular path querying on a social/knowledge graph — the workload the
//! paper's introduction motivates (RPQ over an edge-labeled graph, Table
//! II templates).
//!
//! Builds a LUBM-like university graph, runs a handful of Table II
//! query templates instantiated with the most frequent relations, and
//! reports index size and a few extracted witness paths.
//!
//! Run: `cargo run -p spbla-examples --bin rpq_social`

use spbla_core::Instance;
use spbla_data::lubm::{lubm_like, LubmConfig};
use spbla_data::queries::{instantiate_template, template};
use spbla_graph::paths::word_of;
use spbla_graph::rpq::{RpqIndex, RpqOptions};
use spbla_lang::SymbolTable;

fn main() {
    let mut table = SymbolTable::new();
    let graph = lubm_like(4, &LubmConfig::default(), &mut table, 42);
    println!(
        "LUBM-like graph: {} vertices, {} edges",
        graph.n_vertices(),
        graph.n_edges()
    );
    let top: Vec<String> = graph
        .labels_by_frequency()
        .iter()
        .take(6)
        .map(|&(s, c)| format!("{} ({c})", table.name(s)))
        .collect();
    println!("most frequent relations: {}", top.join(", "));

    let inst = Instance::cuda_sim();
    // memberOf . takesCourse-ish chains via the most frequent labels.
    for (tname, labels) in [
        ("Q2", vec!["memberOf", "subOrganizationOf"]),
        ("Q4^2", vec!["memberOf", "subOrganizationOf"]),
        ("Q5", vec!["takesCourse", "teacherOf", "worksFor"]),
        ("Q11^3", vec!["memberOf", "subOrganizationOf", "type"]),
    ] {
        let t = template(tname).expect("known template");
        let refs: Vec<&str> = labels.iter().map(|s| &**s).collect();
        let regex = instantiate_template(t, &refs, &mut table);
        let start = std::time::Instant::now();
        let idx =
            RpqIndex::build(&graph, &regex, &inst, &RpqOptions::default()).expect("index builds");
        let pairs = idx.reachable_pairs().expect("pairs extract");
        println!(
            "{tname:<6} {} automaton states, index nnz {:>8}, {:>7} pairs, {:>8.2?}",
            idx.automaton_states(),
            idx.index_nnz(),
            pairs.len(),
            start.elapsed()
        );
        if let Some(&(u, v)) = pairs.iter().find(|&&(u, v)| u != v) {
            let paths = idx.extract_paths(u, v, 8, 3);
            for p in paths.iter().take(1) {
                let word: Vec<&str> = word_of(p).iter().map(|&s| table.name(s)).collect();
                println!("        witness {u} → {v}: {}", word.join(" · "));
            }
        }
    }
    println!("rpq_social: done");
}
